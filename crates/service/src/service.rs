//! The estimation service: a worker pool over the catalog.
//!
//! A [`Service`] owns `N` worker threads. Each worker has its **own**
//! request queue (a mutex + condvar pair — sharded, so submitters and
//! workers touching different queues never contend), and requests are
//! spread round-robin across the queues. An idle worker first drains its
//! own queue, then **steals** from the back of its siblings' queues before
//! sleeping, so one hot queue cannot strand work while other workers idle.
//!
//! Requests are resolved on the submitting thread — catalog snapshot
//! lookup (an `Arc` clone) and plan-cache lookup (sharded LRU) are both
//! cheap — so a queued job is entirely self-contained: snapshot + plans +
//! reply channel. Workers therefore never touch the catalog and are
//! immune to concurrent `LOAD`s/updates: they estimate against whatever
//! epoch the request was resolved at.
//!
//! Batches are split into per-worker chunks ([`Service::estimate_batch`]),
//! each executed as one snapshot pass over the shared frontier memo (see
//! [`crate::batch`]); the memo is built once per snapshot epoch and shared
//! by all workers.
//!
//! ## Backpressure and admission control
//!
//! Every queue is **bounded**: [`ServiceConfig::queue_capacity`] queries
//! per worker. Admission happens on the submitting thread *before*
//! anything is enqueued — a request's cost (1 for a single estimate, the
//! query count for a batch) is reserved against a queue's remaining
//! budget, falling back to sibling queues when the preferred one is full.
//! When no queue can take it, the request is **shed**: the submitter gets
//! [`ServiceError::Overloaded`] immediately (the daemon turns it into the
//! protocol's `OVERLOADED` reply), nothing is partially enqueued, and
//! in-flight work is untouched. Batches are admitted all-or-nothing: a
//! partially reserved batch releases its reservations and sheds whole, so
//! a client never receives a truncated result. The
//! accepted/shed/queued/peak-queued counters are surfaced through
//! [`Service::stats`] (and the `STATS` protocol verb) so operators can
//! see pressure before it becomes failure.
//!
//! ## Feedback and self-maintenance
//!
//! [`Service::feedback`] closes the paper's Figure 1 loop: an observed
//! cardinality is routed through the catalog's feedback path (HET entry
//! updated, epoch bumped, fresh snapshot published — in-flight readers
//! untouched), and when the document's [`crate::MaintenancePolicy`]
//! declares the accumulated error mass due, the service's **maintenance
//! thread** rebuilds the HET from the retained document in the
//! background. The thread is owned by the service (shutdown-safe:
//! dropping the service releases it) and pausable like a worker
//! ([`Service::pause_maintenance`]); callers that need the rebuild's
//! result synchronously wait on the returned [`RebuildTicket`]. Outcomes
//! are counted (`feedback_applied` / `feedback_ignored` /
//! `rebuilds_triggered` in [`ServiceStats`]).

use crate::batch::{execute_batch_bound, execute_batch_observed, FeedbackItem};
use crate::catalog::{Catalog, CatalogFeedbackBatch, RebuildError, SnapshotError};
use crate::metrics::{Obs, Stage};
use crate::persist::WarmStart;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::trace::TraceKind;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xpathkit::{ParseError, QueryPlan};
use xseed_core::SynopsisSnapshot;
use xseed_core::{BoundedEstimate, FeedbackOutcome, FeedbackReport, HetBuildStats};

/// Fallback interval at which an idle worker re-checks its siblings'
/// queues for stealable work. Pushes notify the target queue *and* one
/// sibling (see [`Shared::push`]), so steal latency is normally condvar
/// wake-up time; this poll only backstops the case where every notified
/// worker was already busy, and is long enough that an idle daemon stays
/// essentially asleep.
const STEAL_POLL: Duration = Duration::from_millis(50);

/// Errors surfaced by [`Service`] calls.
#[derive(Debug)]
pub enum ServiceError {
    /// The named document is not registered in the catalog.
    UnknownDocument(String),
    /// The query text failed to parse.
    Parse(ParseError),
    /// The request was shed by admission control: no worker queue had
    /// room for its cost. Nothing was enqueued; retrying after a backoff
    /// is safe. `queued` is the total number of queries queued across all
    /// workers at shed time, `capacity` the total queue budget
    /// (`workers × queue_capacity`).
    Overloaded {
        /// Queries queued across all worker queues when the shed happened.
        queued: usize,
        /// Total queue budget the service will accept.
        capacity: usize,
    },
    /// The worker pool shut down before answering.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDocument(name) => write!(f, "unknown document '{name}'"),
            ServiceError::Parse(err) => write!(f, "parse error: {err}"),
            ServiceError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: {queued} queries queued against a budget of {capacity}"
            ),
            ServiceError::Disconnected => write!(f, "service workers shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ParseError> for ServiceError {
    fn from(err: ParseError) -> Self {
        ServiceError::Parse(err)
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (and request-queue shards). Clamped to at least 1.
    pub workers: usize,
    /// Queue budget per worker, **in queries** (a batch of `n` queries
    /// costs `n`), clamped to at least 1. Requests beyond the budget are
    /// shed with [`ServiceError::Overloaded`] instead of growing queues
    /// without bound; a single batch larger than one queue's budget can
    /// never be admitted. See the module docs.
    pub queue_capacity: usize,
    /// Total plan-cache capacity (plans), spread over the cache shards.
    pub plan_cache_capacity: usize,
    /// Plan-cache shards; defaults to `4 × workers` to keep shard
    /// contention negligible.
    pub plan_cache_shards: usize,
    /// Whether the observability layer (per-stage latency histograms,
    /// q-error tracking, the event trace ring — see [`crate::metrics`])
    /// is enabled. On by default; when off, no [`Obs`] registry is
    /// allocated and every would-be sample is a null-pointer check, so
    /// the disabled cost is ≈0 (pinned by the bench's `obs_off` rows).
    pub observability: bool,
}

impl ServiceConfig {
    /// A configuration with `workers` worker threads and defaults for the
    /// queue budget and plan cache.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        ServiceConfig {
            workers,
            queue_capacity: 1024,
            plan_cache_capacity: 4096,
            plan_cache_shards: workers * 4,
            observability: true,
        }
    }

    /// Sets the per-worker queue budget (builder style).
    pub fn with_queue_capacity(mut self, queries: usize) -> Self {
        self.queue_capacity = queries.max(1);
        self
    }

    /// Enables or disables the observability layer (builder style).
    pub fn with_observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::with_workers(workers)
    }
}

/// One self-contained unit of work: estimate `plans` against `snapshot`
/// and send the results (tagged with `chunk` for reassembly) to `reply`.
struct Job {
    snapshot: SynopsisSnapshot,
    plans: Vec<Arc<QueryPlan>>,
    /// Length of the whole logical batch this job is a chunk of; drives
    /// the memo policy uniformly across all chunks (see [`execute_batch`]).
    batch_len: usize,
    chunk: usize,
    reply: mpsc::Sender<(usize, Vec<f64>)>,
}

/// A queued entry: an estimation job, or a fence pausing the worker that
/// reaches it (see [`Service::pause_worker`]).
enum Work {
    Estimate(Job),
    Fence {
        /// Signalled (by dropping) when the worker reaches the fence.
        reached: mpsc::Sender<()>,
        /// The worker blocks here until the pause guard drops its sender.
        release: mpsc::Receiver<()>,
    },
}

struct QueueShard {
    jobs: Mutex<VecDeque<Work>>,
    ready: Condvar,
    /// Queries reserved against this queue's budget (queued jobs plus
    /// admission reservations not yet pushed). Fences cost nothing.
    depth: AtomicUsize,
}

struct Shared {
    queues: Vec<QueueShard>,
    /// Per-queue admission budget, in queries.
    queue_capacity: usize,
    shutdown: AtomicBool,
    steals: AtomicU64,
    batches: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    peak_queued: AtomicUsize,
    executed: Vec<AtomicU64>,
    /// The observability registry; `None` when the layer is disabled.
    obs: Option<Arc<Obs>>,
    /// Whether the last admission decision was a shed — drives the
    /// `shed_on`/`shed_off` *transition* events in the trace ring (the
    /// ring records bursts, not every rejected request).
    shedding: AtomicBool,
}

impl Shared {
    /// Reserves `cost` queries of `queue`'s budget; `false` when it does
    /// not fit. Admission is the *only* path that grows a queue, so the
    /// bound holds regardless of worker/stealer interleavings.
    fn try_reserve(&self, queue: usize, cost: usize) -> bool {
        self.queues[queue]
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                (cost <= self.queue_capacity.saturating_sub(depth)).then_some(depth + cost)
            })
            .is_ok()
    }

    fn release(&self, queue: usize, cost: usize) {
        self.queues[queue].depth.fetch_sub(cost, Ordering::Relaxed);
    }

    fn total_queued(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.depth.load(Ordering::Relaxed))
            .sum()
    }

    fn note_peak(&self) {
        self.peak_queued
            .fetch_max(self.total_queued(), Ordering::Relaxed);
    }

    /// Finds a queue with room for `cost`, preferring `preferred` and —
    /// unless `pinned` — falling back to siblings. Reserves the budget on
    /// success; the caller must then `push` (or `release` on abort).
    fn admit(&self, preferred: usize, cost: usize, pinned: bool) -> Option<usize> {
        let n = self.queues.len();
        let preferred = preferred % n;
        if self.try_reserve(preferred, cost) {
            return Some(preferred);
        }
        if !pinned {
            for offset in 1..n {
                let queue = (preferred + offset) % n;
                if self.try_reserve(queue, cost) {
                    return Some(queue);
                }
            }
        }
        None
    }

    fn push(&self, queue: usize, work: Work) {
        let shard = &self.queues[queue];
        shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push_back(work);
        shard.ready.notify_one();
        // Also wake one sibling: if the owner is mid-job, the neighbour
        // steals immediately instead of waiting out its fallback poll.
        if self.queues.len() > 1 {
            self.queues[(queue + 1) % self.queues.len()]
                .ready
                .notify_one();
        }
    }

    fn pop_own(&self, worker: usize) -> Option<Work> {
        let work = self.queues[worker]
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .pop_front();
        if let Some(Work::Estimate(job)) = &work {
            self.release(worker, job.plans.len());
        }
        work
    }

    /// Steals from the back of a sibling queue (the opposite end from the
    /// owner, minimizing contention and keeping stolen work coarse).
    /// Fences are never stolen — they pause the queue's *owner* — so a
    /// victim whose back entry is a fence is skipped.
    fn steal(&self, thief: usize) -> Option<Work> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            let mut jobs = self.queues[victim]
                .jobs
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            if matches!(jobs.back(), Some(Work::Estimate(_))) {
                let work = jobs.pop_back();
                drop(jobs);
                if let Some(Work::Estimate(job)) = &work {
                    self.release(victim, job.plans.len());
                }
                self.steals.fetch_add(1, Ordering::Relaxed);
                return work;
            }
        }
        None
    }

    /// Marks an admission-control shed, tracing the off→on transition.
    fn note_shed(&self) {
        if let Some(obs) = &self.obs {
            if !self.shedding.swap(true, Ordering::Relaxed) {
                obs.trace().record(TraceKind::ShedOn, "admission");
            }
        }
    }

    /// Marks a successful admission, tracing the on→off transition. The
    /// steady-state (non-shedding) cost is one relaxed load.
    fn note_admitted(&self) {
        if let Some(obs) = &self.obs {
            if self.shedding.load(Ordering::Relaxed) && self.shedding.swap(false, Ordering::Relaxed)
            {
                obs.trace().record(TraceKind::ShedOff, "admission");
            }
        }
    }
}

/// One queued maintenance action.
enum MaintenanceWork {
    /// Rebuild `name`'s HET from its retained document.
    Rebuild {
        name: String,
        /// Receives the outcome; a dropped receiver means nobody waits.
        done: mpsc::Sender<Result<(HetBuildStats, u64), RebuildError>>,
    },
    /// Parks the maintenance thread until released (mirrors the worker
    /// fence of [`Service::pause_worker`]).
    Fence {
        reached: mpsc::Sender<()>,
        release: mpsc::Receiver<()>,
    },
}

/// State shared between the maintenance thread and the service front end.
struct MaintenanceShared {
    jobs: Mutex<VecDeque<MaintenanceWork>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Feedbacks whose outcome was simple/correlated (applied to a HET).
    feedback_applied: AtomicU64,
    /// Feedbacks whose shape the HET cannot store.
    feedback_ignored: AtomicU64,
    /// Automatic rebuilds completed by the maintenance thread.
    rebuilds_triggered: AtomicU64,
    /// The observability registry; `None` when the layer is disabled.
    obs: Option<Arc<Obs>>,
}

impl MaintenanceShared {
    fn push(&self, work: MaintenanceWork) {
        self.jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push_back(work);
        self.ready.notify_one();
    }

    fn note_outcome(&self, outcome: FeedbackOutcome) {
        match outcome {
            FeedbackOutcome::Unsupported => self.feedback_ignored.fetch_add(1, Ordering::Relaxed),
            _ => self.feedback_applied.fetch_add(1, Ordering::Relaxed),
        };
    }
}

fn maintenance_loop(catalog: Arc<Catalog>, shared: Arc<MaintenanceShared>) {
    loop {
        let work = shared
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .pop_front();
        match work {
            Some(MaintenanceWork::Rebuild { name, done }) => {
                // Shutdown drains queued rebuilds *without executing
                // them*: a multi-second build must not hold up
                // `Service::drop`, and waiters get an honest answer.
                let result = if shared.shutdown.load(Ordering::Acquire) {
                    Err(RebuildError::ShutDown)
                } else {
                    let started = Instant::now();
                    let result = catalog
                        .rebuild_het_retained_auto(&name)
                        .map(|(stats, snapshot)| (stats, snapshot.epoch()));
                    if let Some(obs) = &shared.obs {
                        obs.record(Stage::HetRebuild, started.elapsed());
                    }
                    result
                };
                if result.is_ok() {
                    shared.rebuilds_triggered.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &shared.obs {
                        obs.trace().record(TraceKind::Rebuild, &name);
                    }
                }
                // A dropped receiver just means nobody waited.
                let _ = done.send(result);
                continue;
            }
            Some(MaintenanceWork::Fence { reached, release }) => {
                if let Some(obs) = &shared.obs {
                    obs.trace().record(TraceKind::Pause, "maintenance");
                }
                drop(reached);
                // Held until the pause guard releases — but never past
                // shutdown, so dropping the service cannot hang the join.
                loop {
                    match release.recv_timeout(STEAL_POLL) {
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
                if let Some(obs) = &shared.obs {
                    obs.trace().record(TraceKind::Resume, "maintenance");
                }
                continue;
            }
            None => {}
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            // Bounded wait so a shutdown flag set between the check and
            // the sleep is still noticed promptly.
            let _ = shared
                .ready
                .wait_timeout(guard, STEAL_POLL)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        match shared.pop_own(id).or_else(|| shared.steal(id)) {
            Some(Work::Estimate(job)) => {
                let started = Instant::now();
                let results =
                    execute_batch_observed(&job.snapshot, &job.plans, job.batch_len, &shared.obs);
                if job.batch_len > 1 {
                    if let Some(obs) = &shared.obs {
                        obs.record(Stage::BatchChunk, started.elapsed());
                    }
                }
                shared.executed[id].fetch_add(job.plans.len() as u64, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed);
                // A dropped receiver just means the caller gave up waiting.
                let _ = job.reply.send((job.chunk, results));
                continue;
            }
            Some(Work::Fence { reached, release }) => {
                if let Some(obs) = &shared.obs {
                    obs.trace()
                        .record(TraceKind::Pause, &format!("worker-{id}"));
                }
                drop(reached);
                // Held until the pause guard drops its sender — but never
                // past shutdown, so dropping the Service while a guard is
                // alive cannot hang the join in [`Service::drop`].
                loop {
                    match release.recv_timeout(STEAL_POLL) {
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
                if let Some(obs) = &shared.obs {
                    obs.trace()
                        .record(TraceKind::Resume, &format!("worker-{id}"));
                }
                continue;
            }
            None => {}
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let shard = &shared.queues[id];
        let guard = shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            // Bounded wait: our own queue wakes us via the condvar, but
            // stealable work lands on sibling queues without notifying us.
            let _ = shard
                .ready
                .wait_timeout(guard, STEAL_POLL)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// A handle to an estimate submitted with [`Service::submit`]; resolve it
/// with [`PendingEstimate::wait`].
pub struct PendingEstimate {
    rx: mpsc::Receiver<(usize, Vec<f64>)>,
}

impl PendingEstimate {
    /// Blocks until the worker pool answers.
    pub fn wait(self) -> Result<f64, ServiceError> {
        let (_, results) = self.rx.recv().map_err(|_| ServiceError::Disconnected)?;
        results.first().copied().ok_or(ServiceError::Disconnected)
    }
}

/// A handle to an automatic rebuild the maintenance thread owes; resolve
/// it with [`RebuildTicket::wait`] for a synchronous view (the protocol
/// layer does, so `FEEDBACK` replies and subsequent `STATS` are
/// deterministic), or drop it to let the rebuild finish in the
/// background.
pub struct RebuildTicket {
    rx: mpsc::Receiver<Result<(HetBuildStats, u64), RebuildError>>,
}

impl RebuildTicket {
    /// Blocks until the maintenance thread finishes the rebuild,
    /// returning the build statistics and the epoch of the snapshot it
    /// published. `Err` carries why the rebuild could not run (the
    /// document was removed or its retention released in the meantime, or
    /// the service shut down first).
    pub fn wait(self) -> Result<(HetBuildStats, u64), RebuildError> {
        match self.rx.recv() {
            Ok(result) => result,
            // The maintenance thread dropped the sender without answering:
            // shutdown won the race. The entry (if any) is unchanged.
            Err(mpsc::RecvError) => Err(RebuildError::ShutDown),
        }
    }
}

/// Result of one [`Service::feedback`] call.
pub struct ServiceFeedback {
    /// What the synopsis recorded (outcome, prior estimate, error).
    pub report: FeedbackReport,
    /// Epoch published by the feedback itself (unchanged for unsupported
    /// shapes; a triggered rebuild publishes a later one — see `rebuild`).
    pub epoch: u64,
    /// Present when this feedback crossed the document's maintenance
    /// policy: the rebuild is already queued on the maintenance thread.
    pub rebuild: Option<RebuildTicket>,
}

/// Result of one [`Service::feedback_batch`] call.
pub struct ServiceFeedbackBatch {
    /// Per-item reports, in input order.
    pub reports: Vec<FeedbackReport>,
    /// Epoch of the single snapshot published after the whole batch.
    pub epoch: u64,
    /// Present when the batch crossed the document's maintenance policy.
    pub rebuild: Option<RebuildTicket>,
}

/// A point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker thread count.
    pub workers: usize,
    /// Per-worker queue budget, in queries.
    pub queue_capacity: usize,
    /// Estimates executed per worker (index = worker id).
    pub executed: Vec<u64>,
    /// Jobs a worker took from a sibling's queue.
    pub steals: u64,
    /// Jobs executed in total (single estimates count as 1-query batches).
    pub batches: u64,
    /// Queries admitted by admission control since startup.
    pub accepted: u64,
    /// Queries shed with [`ServiceError::Overloaded`] since startup.
    pub shed: u64,
    /// Queries currently queued (reserved budget) across all workers.
    pub queued: usize,
    /// High-water mark of [`ServiceStats::queued`] since startup.
    pub peak_queued: usize,
    /// Feedbacks applied to a HET (simple or correlated) via
    /// [`Service::feedback`] / [`Service::feedback_batch`].
    pub feedback_applied: u64,
    /// Feedbacks ignored (unsupported query shapes).
    pub feedback_ignored: u64,
    /// Automatic HET rebuilds completed by the maintenance thread.
    pub rebuilds_triggered: u64,
    /// Snapshots saved successfully ([`Service::save_snapshot`]).
    pub persist_saves: u64,
    /// Snapshots loaded successfully ([`Service::load_snapshot`] plus
    /// warm-start restores).
    pub persist_loads: u64,
    /// Snapshot loads that failed (protocol `LOAD … file:` plus corrupt
    /// warm-start files).
    pub persist_load_failures: u64,
    /// Snapshot files renamed to `.corrupt` by a warm-start scan.
    pub quarantined: u64,
    /// Requests shed by the TCP front end's per-client token-bucket rate
    /// limiter. `None` until a front end arms the limiter
    /// ([`Service::arm_rate_limiter`]) — `STATS`/`METRICS` omit the key
    /// entirely when the feature is off, `Some(0)` means armed but never
    /// tripped.
    pub rate_limited: Option<u64>,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Whole seconds since the service started.
    pub uptime_secs: u64,
}

impl ServiceStats {
    /// Total estimates executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// Lifetime snapshot-persistence counters (see [`ServiceStats`]).
#[derive(Default)]
struct PersistCounters {
    saves: AtomicU64,
    loads: AtomicU64,
    load_failures: AtomicU64,
    quarantined: AtomicU64,
}

/// Counters fed by the network front end ([`crate::server`]): the event
/// loop reports per-client rate-limit sheds here so the protocol layer
/// surfaces them through `STATS`/`METRICS` next to the admission-control
/// counters. `armed` gates reporting — a daemon without `--client-rate`
/// never shows the key, keeping default transcripts stable.
#[derive(Default)]
struct NetCounters {
    rate_limited: AtomicU64,
    armed: AtomicBool,
}

/// The multi-threaded estimation service. See the module docs.
pub struct Service {
    catalog: Arc<Catalog>,
    plans: Arc<PlanCache>,
    shared: Arc<Shared>,
    maintenance: Arc<MaintenanceShared>,
    persist: PersistCounters,
    net: NetCounters,
    handles: Vec<JoinHandle<()>>,
    maintenance_handle: Option<JoinHandle<()>>,
    next_queue: AtomicUsize,
    /// Kept outside [`Obs`] so `uptime_secs` reports even with
    /// observability off.
    started: Instant,
    obs: Option<Arc<Obs>>,
}

impl Service {
    /// Starts a service with `config.workers` worker threads reading from
    /// `catalog`.
    pub fn new(catalog: Arc<Catalog>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        // Shard the histograms for the threads that record concurrently:
        // the workers plus the submitter-side stages (parse, plan lookup,
        // feedback) and the maintenance thread.
        let obs = config
            .observability
            .then(|| Arc::new(Obs::new(workers + 2)));
        let shared = Arc::new(Shared {
            queues: (0..workers)
                .map(|_| QueueShard {
                    jobs: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            queue_capacity: config.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak_queued: AtomicUsize::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            obs: obs.clone(),
            shedding: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xseed-worker-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn estimation worker")
            })
            .collect();
        let maintenance = Arc::new(MaintenanceShared {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            feedback_applied: AtomicU64::new(0),
            feedback_ignored: AtomicU64::new(0),
            rebuilds_triggered: AtomicU64::new(0),
            obs: obs.clone(),
        });
        let maintenance_handle = {
            let catalog = catalog.clone();
            let maintenance = maintenance.clone();
            std::thread::Builder::new()
                .name("xseed-maintenance".to_string())
                .spawn(move || maintenance_loop(catalog, maintenance))
                .expect("spawn maintenance thread")
        };
        Service {
            catalog,
            plans: Arc::new(
                PlanCache::new(config.plan_cache_shards, config.plan_cache_capacity)
                    .with_obs(obs.clone()),
            ),
            shared,
            maintenance,
            persist: PersistCounters::default(),
            net: NetCounters::default(),
            handles,
            maintenance_handle: Some(maintenance_handle),
            next_queue: AtomicUsize::new(0),
            started: Instant::now(),
            obs,
        }
    }

    /// The observability registry, when [`ServiceConfig::observability`]
    /// is on. The protocol layer reads histograms and the trace ring
    /// through this (`METRICS`, `TRACE`, the q-error keys of `STATS`).
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Marks the per-client rate limiter as configured. Called once by a
    /// network front end that was started with a client rate; from then
    /// on [`ServiceStats::rate_limited`] is `Some` and the `rate_limited`
    /// key appears in `STATS`/`METRICS` (as zero until a client trips
    /// it). Daemons without a limiter never show the key.
    pub fn arm_rate_limiter(&self) {
        self.net.armed.store(true, Ordering::Relaxed);
    }

    /// Counts one request shed by the per-client rate limiter (the
    /// `OVERLOADED rate=…` reply path of [`crate::server`]).
    pub fn note_rate_limited(&self) {
        self.net.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Saves the named document's snapshot to `path` (see
    /// [`Catalog::save_snapshot`]); successful saves are counted in
    /// [`ServiceStats::persist_saves`]. Returns the snapshot size in
    /// bytes.
    pub fn save_snapshot(&self, name: &str, path: &std::path::Path) -> Result<u64, SnapshotError> {
        let started = Instant::now();
        let bytes = self.catalog.save_snapshot(name, path)?;
        self.persist.saves.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.record(Stage::SnapshotSave, started.elapsed());
            obs.trace().record(TraceKind::Save, name);
        }
        Ok(bytes)
    }

    /// Loads a snapshot file into the catalog under `name` (see
    /// [`Catalog::load_snapshot`]), counting the outcome in
    /// [`ServiceStats::persist_loads`] /
    /// [`ServiceStats::persist_load_failures`]. Returns the published
    /// snapshot and whether a spilled document was restored.
    pub fn load_snapshot(
        &self,
        name: &str,
        path: &std::path::Path,
        max_documents: Option<usize>,
    ) -> Result<(SynopsisSnapshot, bool), SnapshotError> {
        let started = Instant::now();
        match self.catalog.load_snapshot(name, path, max_documents) {
            Ok(loaded) => {
                self.persist.loads.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.record(Stage::SnapshotLoad, started.elapsed());
                    obs.trace().record(TraceKind::Load, name);
                }
                Ok(loaded)
            }
            Err(e) => {
                self.persist.load_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Folds a boot-time [`crate::persist::warm_start`] result into the
    /// persistence counters: restored snapshots count as loads, and each
    /// quarantined file counts as both a load failure and a quarantine.
    pub fn note_warm_start(&self, warm: &WarmStart) {
        self.persist
            .loads
            .fetch_add(warm.loaded.len() as u64, Ordering::Relaxed);
        self.persist
            .load_failures
            .fetch_add(warm.quarantined.len() as u64, Ordering::Relaxed);
        self.persist
            .quarantined
            .fetch_add(warm.quarantined.len() as u64, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            for name in &warm.loaded {
                obs.trace().record(TraceKind::Load, name);
            }
            for file in &warm.quarantined {
                obs.trace().record(TraceKind::Quarantine, file);
            }
        }
    }

    /// The catalog this service estimates from.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn resolve(&self, doc: &str) -> Result<SynopsisSnapshot, ServiceError> {
        self.catalog
            .snapshot(doc)
            .ok_or_else(|| ServiceError::UnknownDocument(doc.to_string()))
    }

    /// Submits one query for estimation against `doc`'s current snapshot,
    /// round-robined onto a worker queue (falling back to siblings when
    /// the preferred queue is full). Returns immediately;
    /// [`ServiceError::Overloaded`] when every queue's budget is
    /// exhausted.
    pub fn submit(&self, doc: &str, query: &str) -> Result<PendingEstimate, ServiceError> {
        let queue = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.submit_inner(queue, doc, query, false)
    }

    /// Like [`Service::submit`], but pinned to a specific worker queue —
    /// callers with document-affinity (or tests exercising the stealing
    /// path) can direct related requests at one shard. Pinned requests do
    /// not fall back: a full pinned queue sheds immediately.
    pub fn submit_pinned(
        &self,
        queue: usize,
        doc: &str,
        query: &str,
    ) -> Result<PendingEstimate, ServiceError> {
        self.submit_inner(queue, doc, query, true)
    }

    fn submit_inner(
        &self,
        queue: usize,
        doc: &str,
        query: &str,
        pinned: bool,
    ) -> Result<PendingEstimate, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plan = self.plans.get_or_parse(query)?;
        let Some(queue) = self.shared.admit(queue, 1, pinned) else {
            return Err(self.shed(1));
        };
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.note_admitted();
        self.shared.note_peak();
        let (tx, rx) = mpsc::channel();
        self.shared.push(
            queue,
            Work::Estimate(Job {
                snapshot,
                plans: vec![plan],
                batch_len: 1,
                chunk: 0,
                reply: tx,
            }),
        );
        Ok(PendingEstimate { rx })
    }

    /// Records a shed of `cost` queries and builds the overload error.
    fn shed(&self, cost: usize) -> ServiceError {
        self.shared.shed.fetch_add(cost as u64, Ordering::Relaxed);
        self.shared.note_shed();
        ServiceError::Overloaded {
            queued: self.shared.total_queued(),
            capacity: self.shared.queue_capacity * self.workers(),
        }
    }

    /// Pauses the worker that owns `queue`: a fence is enqueued (bypassing
    /// the queue budget) and the worker parks on it until the returned
    /// guard is dropped. Jobs queued behind the fence stay queued — on a
    /// multi-worker service siblings may steal them, so pausing *all*
    /// workers quiesces the pool for maintenance. Used by the overload
    /// tests to make shedding deterministic.
    ///
    /// Shutdown overrides the fence: dropping the [`Service`] while a
    /// guard is alive releases the parked worker (within the fence's
    /// poll interval) instead of hanging the join.
    pub fn pause_worker(&self, queue: usize) -> WorkerPause {
        let (reached_tx, reached_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        self.shared.push(
            queue % self.workers(),
            Work::Fence {
                reached: reached_tx,
                release: release_rx,
            },
        );
        WorkerPause {
            _release: release_tx,
            reached: reached_rx,
        }
    }

    /// Estimates one query, blocking until a worker answers.
    pub fn estimate(&self, doc: &str, query: &str) -> Result<f64, ServiceError> {
        self.submit(doc, query)?.wait()
    }

    /// Estimates one query in **bound mode**: the point estimate paired
    /// with a guaranteed upper bound on the true cardinality (see
    /// [`xseed_core::StreamingMatcher::estimate_bound`]). Runs through the
    /// batch executor on the calling thread, admission-controlled like an
    /// estimate — it reserves one query of queue budget and sheds with
    /// [`ServiceError::Overloaded`] when the service is saturated.
    pub fn estimate_bound(&self, doc: &str, query: &str) -> Result<BoundedEstimate, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plan = self.plans.get_or_parse(query)?;
        let queue = self.admit_inline(1)?;
        let started = Instant::now();
        let bounded = execute_batch_bound(&snapshot, std::slice::from_ref(&plan), 1);
        if let Some(obs) = &self.obs {
            obs.record(Stage::Estimate, started.elapsed());
        }
        self.shared.release(queue, 1);
        Ok(bounded
            .into_iter()
            .next()
            .expect("one plan in, one bounded estimate out"))
    }

    /// Folds one applied feedback observation into the global q-error
    /// histogram — the served-accuracy grading of `STATS`/`METRICS`.
    /// Unsupported shapes carry no usable prior estimate and are skipped.
    fn note_q_error(&self, report: &FeedbackReport, actual: u64) {
        if let Some(obs) = &self.obs {
            if report.outcome != FeedbackOutcome::Unsupported {
                obs.record_q_error(report.estimated, actual);
            }
        }
    }

    /// Enqueues an automatic rebuild of `doc` on the maintenance thread.
    fn enqueue_rebuild(&self, doc: &str) -> RebuildTicket {
        let (tx, rx) = mpsc::channel();
        self.maintenance.push(MaintenanceWork::Rebuild {
            name: doc.to_string(),
            done: tx,
        });
        RebuildTicket { rx }
    }

    /// Reserves `cost` queries of admission budget for work that runs on
    /// the calling thread (feedback): the same backpressure that guards
    /// the estimate path, so a flooding feedback client sheds with
    /// [`ServiceError::Overloaded`] instead of consuming unbounded CPU.
    /// Returns the queue whose budget was reserved; the caller must
    /// release it.
    fn admit_inline(&self, cost: usize) -> Result<usize, ServiceError> {
        let preferred = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
        let Some(queue) = self.shared.admit(preferred, cost, false) else {
            return Err(self.shed(cost));
        };
        self.shared
            .accepted
            .fetch_add(cost as u64, Ordering::Relaxed);
        self.shared.note_admitted();
        self.shared.note_peak();
        Ok(queue)
    }

    /// Feeds back the observed cardinality of an executed query — the
    /// paper's Figure 1 arrow from the optimizer back to the HET, through
    /// the serving layer. The query resolves through the plan cache, the
    /// prior estimate and classification run lock-free against the
    /// published snapshot, and the observation applies under the catalog
    /// entry's writer lock (epoch bump + fresh snapshot; unsupported
    /// shapes change nothing). The work runs on the calling thread but is
    /// **admission-controlled** like an estimate: it reserves one query of
    /// queue budget for its duration and sheds with
    /// [`ServiceError::Overloaded`] when the service is saturated. When
    /// the document's maintenance policy declares the drift due, a
    /// rebuild is queued on the maintenance thread and the returned
    /// [`RebuildTicket`] resolves when it completes. `base` is the
    /// cardinality of the same path without predicates, when known (see
    /// [`xseed_core::het::feedback::record_feedback`]).
    pub fn feedback(
        &self,
        doc: &str,
        query: &str,
        actual: u64,
        base: Option<u64>,
    ) -> Result<ServiceFeedback, ServiceError> {
        let plan = self.plans.get_or_parse(query)?;
        let queue = self.admit_inline(1)?;
        let started = Instant::now();
        let result = self
            .catalog
            .record_feedback(doc, plan.expr(), actual, base)
            .ok_or_else(|| ServiceError::UnknownDocument(doc.to_string()));
        if let Some(obs) = &self.obs {
            obs.record(Stage::FeedbackApply, started.elapsed());
        }
        self.shared.release(queue, 1);
        let fb = result?;
        self.maintenance.note_outcome(fb.report.outcome);
        self.note_q_error(&fb.report, actual);
        let rebuild = fb.rebuild_due.then(|| self.enqueue_rebuild(doc));
        Ok(ServiceFeedback {
            report: fb.report,
            epoch: fb.epoch,
            rebuild,
        })
    }

    /// Feeds back a whole batch of observations in one catalog update
    /// (one snapshot publication for the batch; see
    /// [`crate::Catalog::record_feedback_batch`]). The maintenance policy
    /// is evaluated once over the batch's accumulated error mass.
    /// Admission-controlled like an estimate batch: the whole batch
    /// reserves its query count and sheds all-or-nothing.
    pub fn feedback_batch(
        &self,
        doc: &str,
        items: &[(&str, u64, Option<u64>)],
    ) -> Result<ServiceFeedbackBatch, ServiceError> {
        let items = items
            .iter()
            .map(|&(query, actual, base)| {
                Ok(FeedbackItem {
                    query: self.plans.get_or_parse(query)?,
                    actual,
                    base,
                })
            })
            .collect::<Result<Vec<_>, ServiceError>>()?;
        let queue = self.admit_inline(items.len())?;
        let started = Instant::now();
        let result = self
            .catalog
            .record_feedback_batch(doc, &items)
            .ok_or_else(|| ServiceError::UnknownDocument(doc.to_string()));
        if let Some(obs) = &self.obs {
            obs.record(Stage::FeedbackApply, started.elapsed());
        }
        self.shared.release(queue, items.len());
        let batch: CatalogFeedbackBatch = result?;
        for (report, item) in batch.reports.iter().zip(&items) {
            self.maintenance.note_outcome(report.outcome);
            self.note_q_error(report, item.actual);
        }
        let rebuild = batch.rebuild_due.then(|| self.enqueue_rebuild(doc));
        Ok(ServiceFeedbackBatch {
            reports: batch.reports,
            epoch: batch.epoch,
            rebuild,
        })
    }

    /// Pauses the maintenance thread: a fence is enqueued and the thread
    /// parks on it until the returned guard drops, so tests can pile up
    /// feedback triggers and observe rebuilds draining deterministically.
    /// Rebuild jobs queued behind the fence stay queued; shutdown
    /// overrides the fence exactly like [`Service::pause_worker`].
    pub fn pause_maintenance(&self) -> WorkerPause {
        let (reached_tx, reached_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        self.maintenance.push(MaintenanceWork::Fence {
            reached: reached_tx,
            release: release_rx,
        });
        WorkerPause {
            _release: release_tx,
            reached: reached_rx,
        }
    }

    /// Estimates a batch of queries against one snapshot of `doc`,
    /// splitting it into per-worker chunks that execute as shared-memo
    /// snapshot passes. Results come back in input order. The whole batch
    /// is resolved against a single epoch: a concurrent update to `doc`
    /// never mixes epochs within one batch.
    ///
    /// Admission is all-or-nothing: either every chunk fits the queue
    /// budgets and the batch runs whole, or nothing is enqueued and the
    /// call sheds with [`ServiceError::Overloaded`]. A batch larger than
    /// the total queue budget therefore always sheds — split it client
    /// side.
    pub fn estimate_batch(&self, doc: &str, queries: &[&str]) -> Result<Vec<f64>, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plans = self.plans.get_or_parse_batch(queries)?;
        if plans.is_empty() {
            return Ok(Vec::new());
        }

        // Per-worker chunks, but never so fine that queue/channel overhead
        // dominates the estimates themselves.
        const MIN_CHUNK: usize = 8;
        let workers = self.workers();
        let chunks = workers.min(plans.len().div_ceil(MIN_CHUNK)).max(1);
        let chunk_size = plans.len().div_ceil(chunks);

        // Reserve budget for every chunk before enqueueing anything, so a
        // shed batch leaves no partial work behind.
        let base = self.next_queue.fetch_add(chunks, Ordering::Relaxed);
        let mut placements: Vec<(usize, usize)> = Vec::with_capacity(chunks);
        for (i, chunk) in plans.chunks(chunk_size).enumerate() {
            match self.shared.admit(base + i, chunk.len(), false) {
                Some(queue) => placements.push((queue, chunk.len())),
                None => {
                    for &(queue, cost) in &placements {
                        self.shared.release(queue, cost);
                    }
                    return Err(self.shed(plans.len()));
                }
            }
        }
        self.shared
            .accepted
            .fetch_add(plans.len() as u64, Ordering::Relaxed);
        self.shared.note_admitted();
        self.shared.note_peak();

        let (tx, rx) = mpsc::channel();
        for ((i, chunk), &(queue, _)) in plans.chunks(chunk_size).enumerate().zip(&placements) {
            self.shared.push(
                queue,
                Work::Estimate(Job {
                    snapshot: snapshot.clone(),
                    plans: chunk.to_vec(),
                    batch_len: plans.len(),
                    chunk: i,
                    reply: tx.clone(),
                }),
            );
        }
        drop(tx);

        let mut gathered: Vec<Option<Vec<f64>>> = vec![None; plans.len().div_ceil(chunk_size)];
        for _ in 0..gathered.len() {
            let (chunk, results) = rx.recv().map_err(|_| ServiceError::Disconnected)?;
            gathered[chunk] = Some(results);
        }
        Ok(gathered.into_iter().flatten().flatten().collect())
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: self.workers(),
            queue_capacity: self.shared.queue_capacity,
            executed: self
                .shared
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            queued: self.shared.total_queued(),
            peak_queued: self.shared.peak_queued.load(Ordering::Relaxed),
            feedback_applied: self.maintenance.feedback_applied.load(Ordering::Relaxed),
            feedback_ignored: self.maintenance.feedback_ignored.load(Ordering::Relaxed),
            rebuilds_triggered: self.maintenance.rebuilds_triggered.load(Ordering::Relaxed),
            persist_saves: self.persist.saves.load(Ordering::Relaxed),
            persist_loads: self.persist.loads.load(Ordering::Relaxed),
            persist_load_failures: self.persist.load_failures.load(Ordering::Relaxed),
            quarantined: self.persist.quarantined.load(Ordering::Relaxed),
            rate_limited: self
                .net
                .armed
                .load(Ordering::Relaxed)
                .then(|| self.net.rate_limited.load(Ordering::Relaxed)),
            plan_cache: self.plans.stats(),
            uptime_secs: self.started.elapsed().as_secs(),
        }
    }
}

/// Guard returned by [`Service::pause_worker`]. The paused worker resumes
/// when the guard is dropped (or [`WorkerPause::resume`] is called).
pub struct WorkerPause {
    _release: mpsc::Sender<()>,
    reached: mpsc::Receiver<()>,
}

impl WorkerPause {
    /// Blocks until the worker has actually reached the fence (i.e. it is
    /// parked and will execute nothing queued behind it).
    pub fn wait_until_paused(&self) {
        // The worker *drops* its end on arrival; RecvError is the signal.
        let _ = self.reached.recv();
    }

    /// Resumes the worker (equivalent to dropping the guard).
    pub fn resume(self) {}
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.maintenance.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.queues {
            shard.ready.notify_all();
        }
        self.maintenance.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.maintenance_handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseed_core::{XseedConfig, XseedSynopsis};

    fn fig2_service(workers: usize) -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, ServiceConfig::with_workers(workers))
    }

    #[test]
    fn estimate_matches_direct_synopsis() {
        let service = fig2_service(2);
        let direct =
            XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
                .unwrap();
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*"] {
            let got = service.estimate("fig2", q).unwrap();
            let expected = direct.estimate(&xpathkit::parse(q).unwrap());
            assert!((got - expected).abs() < 1e-9, "{q}");
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 4);
        assert_eq!(stats.plan_cache.misses, 4);
    }

    #[test]
    fn batch_preserves_input_order_across_chunks() {
        let service = fig2_service(4);
        let queries: Vec<String> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*", "/a/*", "//p"]
            .iter()
            .cycle()
            .take(48)
            .map(|q| q.to_string())
            .collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let batch = service.estimate_batch("fig2", &refs).unwrap();
        assert_eq!(batch.len(), refs.len());
        for (q, got) in refs.iter().zip(&batch) {
            let single = service.estimate("fig2", q).unwrap();
            assert!((single - got).abs() < 1e-9, "{q}");
        }
        assert!(service.estimate_batch("fig2", &[]).unwrap().is_empty());
    }

    #[test]
    fn unknown_document_and_parse_errors() {
        let service = fig2_service(1);
        assert!(matches!(
            service.estimate("nope", "/a"),
            Err(ServiceError::UnknownDocument(_))
        ));
        assert!(matches!(
            service.estimate("fig2", "/["),
            Err(ServiceError::Parse(_))
        ));
        // Errors render.
        assert!(format!("{}", ServiceError::Disconnected).contains("shut down"));
    }

    #[test]
    fn pinned_submissions_are_stolen_by_idle_workers() {
        let service = fig2_service(4);
        // Pile everything onto worker 0's queue; with 4 workers the
        // siblings must steal at least some of it.
        let pending: Vec<PendingEstimate> = (0..64)
            .map(|_| service.submit_pinned(0, "fig2", "//s//p").unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 64);
        assert!(
            stats.steals > 0 || stats.executed[0] == 64,
            "either siblings stole or worker 0 drained everything: {stats:?}"
        );
        // On a multi-queue pile-up the plan cache should have one miss.
        assert_eq!(stats.plan_cache.misses, 1);
        assert_eq!(stats.plan_cache.hits, 63);
    }

    #[test]
    fn estimate_bound_through_service() {
        let service = fig2_service(2);
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*"] {
            let point = service.estimate("fig2", q).unwrap();
            let be = service.estimate_bound("fig2", q).unwrap();
            assert!((be.estimate - point).abs() < 1e-9, "{q}");
            assert!(be.bound >= be.estimate, "{q}");
        }
        // //* bounds exactly at the document size (per-label totals are
        // exact); unknown documents still error.
        assert_eq!(service.estimate_bound("fig2", "//*").unwrap().bound, 36.0);
        assert!(matches!(
            service.estimate_bound("nope", "/a"),
            Err(ServiceError::UnknownDocument(_))
        ));
    }

    fn fig2_service_with(config: ServiceConfig) -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, config)
    }

    #[test]
    fn batch_exceeding_total_budget_sheds_whole() {
        let service = fig2_service_with(ServiceConfig::with_workers(2).with_queue_capacity(4));
        let queries: Vec<&str> = std::iter::repeat_n("/a/c/s", 20).collect();
        let err = service.estimate_batch("fig2", &queries).unwrap_err();
        assert!(
            matches!(err, ServiceError::Overloaded { capacity: 8, .. }),
            "{err}"
        );
        let stats = service.stats();
        assert_eq!(stats.shed, 20);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.queued, 0, "shed batches must release reservations");
        // A batch that fits still runs.
        assert_eq!(
            service.estimate_batch("fig2", &queries[..4]).unwrap().len(),
            4
        );
        assert_eq!(service.stats().accepted, 4);
    }

    #[test]
    fn paused_worker_makes_sheds_deterministic() {
        let service = fig2_service_with(ServiceConfig::with_workers(1).with_queue_capacity(2));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();

        let mut pending = Vec::new();
        let mut sheds = 0;
        for _ in 0..5 {
            match service.submit("fig2", "/a/c/s") {
                Ok(p) => pending.push(p),
                Err(ServiceError::Overloaded { queued, capacity }) => {
                    assert_eq!((queued, capacity), (2, 2));
                    sheds += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!((pending.len(), sheds), (2, 3));
        let stats = service.stats();
        assert_eq!((stats.accepted, stats.shed), (2, 3));
        assert_eq!((stats.queued, stats.peak_queued), (2, 2));

        pause.resume();
        for p in pending {
            assert!((p.wait().unwrap() - 5.0).abs() < 1e-9);
        }
        assert_eq!(service.stats().queued, 0);
    }

    #[test]
    fn dropping_the_service_releases_a_live_fence() {
        let service = fig2_service_with(ServiceConfig::with_workers(1));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();
        // Shutdown must override the fence: this would hang forever if
        // the parked worker only listened to the guard.
        drop(service);
        drop(pause);
    }

    #[test]
    fn siblings_steal_past_a_fence() {
        let service = fig2_service_with(ServiceConfig::with_workers(2));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();
        // Work pinned behind the fence is stolen by the idle sibling.
        let pending: Vec<PendingEstimate> = (0..8)
            .map(|_| service.submit_pinned(0, "fig2", "//p").unwrap())
            .collect();
        for p in pending {
            assert!((p.wait().unwrap() - 17.0).abs() < 1e-9);
        }
        let stats = service.stats();
        assert_eq!(stats.executed[0], 0, "paused worker must not execute");
        assert_eq!(stats.executed[1], 8);
        drop(pause);
    }

    #[test]
    fn feedback_applies_and_triggers_auto_rebuild() {
        use crate::catalog::{MaintenancePolicy, RetentionPolicy};
        let catalog = Arc::new(Catalog::new());
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            xseed_core::XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        let service = Service::new(catalog, ServiceConfig::with_workers(2));

        let before = service.estimate("fig4", "/a/b/d/e").unwrap();
        assert!((before - 20.0).abs() > 1e-6, "kernel estimate is inexact");

        let fb = service.feedback("fig4", "/a/b/d/e", 20, None).unwrap();
        assert_eq!(fb.report.outcome, xseed_core::FeedbackOutcome::SimplePath);
        assert!((fb.report.estimated - before).abs() < 1e-9);
        let ticket = fb.rebuild.expect("error mass crossed the bound");
        let (stats, epoch) = ticket.wait().expect("rebuild runs");
        assert!(stats.simple_entries > 0);
        assert!(epoch > fb.epoch);

        // Post-rebuild the fed-back query (and its correlated siblings)
        // answer exactly, and the counters saw everything.
        assert!((service.estimate("fig4", "/a/b/d/e").unwrap() - 20.0).abs() < 1e-9);
        let unsupported = service.feedback("fig4", "//e//f", 3, None).unwrap();
        assert_eq!(
            unsupported.report.outcome,
            xseed_core::FeedbackOutcome::Unsupported
        );
        assert!(unsupported.rebuild.is_none());
        let stats = service.stats();
        assert_eq!(stats.feedback_applied, 1);
        assert_eq!(stats.feedback_ignored, 1);
        assert_eq!(stats.rebuilds_triggered, 1);
        assert!(matches!(
            service.feedback("missing", "/a", 1, None),
            Err(ServiceError::UnknownDocument(_))
        ));
        assert!(matches!(
            service.feedback("fig4", "/[", 1, None),
            Err(ServiceError::Parse(_))
        ));
    }

    #[test]
    fn feedback_batch_counts_and_publishes_once() {
        use crate::catalog::{MaintenancePolicy, RetentionPolicy};
        let catalog = Arc::new(Catalog::new());
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            xseed_core::XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        let service = Service::new(catalog.clone(), ServiceConfig::with_workers(1));
        let batch = service
            .feedback_batch(
                "fig4",
                &[
                    ("/a/b/d/e", 20, None),
                    ("/a/c/d/f", 10, None),
                    ("//e//f", 3, None),
                ],
            )
            .unwrap();
        assert_eq!(batch.reports.len(), 3);
        // The triggered rebuild may already have published a newer epoch
        // by the time we look, so "published once" is a lower bound here.
        assert!(catalog.snapshot("fig4").unwrap().epoch() >= batch.epoch);
        let (_, epoch) = batch
            .rebuild
            .expect("batch crossed the bound")
            .wait()
            .unwrap();
        assert!(epoch > batch.epoch);
        let stats = service.stats();
        assert_eq!(stats.feedback_applied, 2);
        assert_eq!(stats.feedback_ignored, 1);
        assert_eq!(stats.rebuilds_triggered, 1);
    }

    #[test]
    fn feedback_is_admission_controlled() {
        // Fill the whole queue budget with a fenced worker: feedback must
        // shed like an estimate would, and must not leak budget when it
        // runs.
        let service = fig2_service_with(ServiceConfig::with_workers(1).with_queue_capacity(2));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();
        let _a = service.submit("fig2", "/a/c/s").unwrap();
        let _b = service.submit("fig2", "/a/c/s").unwrap();
        assert!(matches!(
            service.feedback("fig2", "/a/c/s", 5, None),
            Err(ServiceError::Overloaded { .. })
        ));
        assert!(matches!(
            service.feedback_batch("fig2", &[("/a/c/s", 5, None)]),
            Err(ServiceError::Overloaded { .. })
        ));
        let shed_before = service.stats().shed;
        assert_eq!(shed_before, 2);
        pause.resume();
        _a.wait().unwrap();
        _b.wait().unwrap();
        // Budget drained: feedback admits and releases its reservation.
        let fb = service.feedback("fig2", "/a/c/s", 5, None).unwrap();
        assert_eq!(fb.report.outcome, xseed_core::FeedbackOutcome::SimplePath);
        assert_eq!(service.stats().queued, 0, "feedback releases its budget");
    }

    #[test]
    fn pause_maintenance_defers_rebuilds_until_released() {
        use crate::catalog::{MaintenancePolicy, RetentionPolicy};
        let catalog = Arc::new(Catalog::new());
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            xseed_core::XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(0.5),
        );
        let service = Service::new(catalog.clone(), ServiceConfig::with_workers(1));
        let pause = service.pause_maintenance();
        pause.wait_until_paused();

        let fb = service.feedback("fig4", "/a/b/d/e", 20, None).unwrap();
        let ticket = fb.rebuild.expect("bound crossed");
        // The rebuild is queued but cannot run while paused.
        assert_eq!(service.stats().rebuilds_triggered, 0);
        assert_eq!(catalog.info()[0].rebuilds, 0);
        pause.resume();
        let (_, epoch) = ticket.wait().expect("rebuild after release");
        assert!(epoch > fb.epoch);
        assert_eq!(service.stats().rebuilds_triggered, 1);
    }

    #[test]
    fn dropping_the_service_releases_a_paused_maintenance_thread() {
        let service = fig2_service(1);
        let pause = service.pause_maintenance();
        pause.wait_until_paused();
        drop(service);
        drop(pause);
    }

    #[test]
    fn rebuild_ticket_reports_missing_retention() {
        use crate::catalog::{MaintenancePolicy, RetentionPolicy};
        let catalog = Arc::new(Catalog::new());
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            xseed_core::XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(0.5),
        );
        let service = Service::new(catalog.clone(), ServiceConfig::with_workers(1));
        let pause = service.pause_maintenance();
        pause.wait_until_paused();
        let fb = service.feedback("fig4", "/a/b/d/e", 20, None).unwrap();
        let ticket = fb.rebuild.expect("bound crossed");
        // The document vanishes before the maintenance thread gets there.
        assert!(catalog.release_document("fig4"));
        pause.resume();
        assert_eq!(
            ticket.wait(),
            Err(crate::catalog::RebuildError::NotRetained)
        );
        assert_eq!(service.stats().rebuilds_triggered, 0);
    }

    #[test]
    fn estimates_span_epochs_consistently() {
        let service = fig2_service(2);
        let before = service.estimate("fig2", "/a/zzz").unwrap();
        assert_eq!(before, 0.0);
        let (grafted, _) = service
            .catalog()
            .update("fig2", |syn| {
                let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
                syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
            })
            .unwrap();
        grafted.unwrap();
        let after = service.estimate("fig2", "/a/zzz").unwrap();
        assert!((after - 1.0).abs() < 1e-9);
    }
}
