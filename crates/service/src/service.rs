//! The estimation service: a worker pool over the catalog.
//!
//! A [`Service`] owns `N` worker threads. Each worker has its **own**
//! request queue (a mutex + condvar pair — sharded, so submitters and
//! workers touching different queues never contend), and requests are
//! spread round-robin across the queues. An idle worker first drains its
//! own queue, then **steals** from the back of its siblings' queues before
//! sleeping, so one hot queue cannot strand work while other workers idle.
//!
//! Requests are resolved on the submitting thread — catalog snapshot
//! lookup (an `Arc` clone) and plan-cache lookup (sharded LRU) are both
//! cheap — so a queued job is entirely self-contained: snapshot + plans +
//! reply channel. Workers therefore never touch the catalog and are
//! immune to concurrent `LOAD`s/updates: they estimate against whatever
//! epoch the request was resolved at.
//!
//! Batches are split into per-worker chunks ([`Service::estimate_batch`]),
//! each executed as one snapshot pass over the shared frontier memo (see
//! [`crate::batch`]); the memo is built once per snapshot epoch and shared
//! by all workers.

use crate::batch::execute_batch;
use crate::catalog::Catalog;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xpathkit::{ParseError, QueryPlan};
use xseed_core::SynopsisSnapshot;

/// Fallback interval at which an idle worker re-checks its siblings'
/// queues for stealable work. Pushes notify the target queue *and* one
/// sibling (see [`Shared::push`]), so steal latency is normally condvar
/// wake-up time; this poll only backstops the case where every notified
/// worker was already busy, and is long enough that an idle daemon stays
/// essentially asleep.
const STEAL_POLL: Duration = Duration::from_millis(50);

/// Errors surfaced by [`Service`] calls.
#[derive(Debug)]
pub enum ServiceError {
    /// The named document is not registered in the catalog.
    UnknownDocument(String),
    /// The query text failed to parse.
    Parse(ParseError),
    /// The worker pool shut down before answering.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDocument(name) => write!(f, "unknown document '{name}'"),
            ServiceError::Parse(err) => write!(f, "parse error: {err}"),
            ServiceError::Disconnected => write!(f, "service workers shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ParseError> for ServiceError {
    fn from(err: ParseError) -> Self {
        ServiceError::Parse(err)
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (and request-queue shards). Clamped to at least 1.
    pub workers: usize,
    /// Total plan-cache capacity (plans), spread over the cache shards.
    pub plan_cache_capacity: usize,
    /// Plan-cache shards; defaults to `4 × workers` to keep shard
    /// contention negligible.
    pub plan_cache_shards: usize,
}

impl ServiceConfig {
    /// A configuration with `workers` worker threads and defaults for the
    /// plan cache.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        ServiceConfig {
            workers,
            plan_cache_capacity: 4096,
            plan_cache_shards: workers * 4,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::with_workers(workers)
    }
}

/// One self-contained unit of work: estimate `plans` against `snapshot`
/// and send the results (tagged with `chunk` for reassembly) to `reply`.
struct Job {
    snapshot: SynopsisSnapshot,
    plans: Vec<Arc<QueryPlan>>,
    /// Length of the whole logical batch this job is a chunk of; drives
    /// the memo policy uniformly across all chunks (see [`execute_batch`]).
    batch_len: usize,
    chunk: usize,
    reply: mpsc::Sender<(usize, Vec<f64>)>,
}

struct QueueShard {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Shared {
    queues: Vec<QueueShard>,
    shutdown: AtomicBool,
    steals: AtomicU64,
    batches: AtomicU64,
    executed: Vec<AtomicU64>,
}

impl Shared {
    fn push(&self, queue: usize, job: Job) {
        let shard = &self.queues[queue];
        shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push_back(job);
        shard.ready.notify_one();
        // Also wake one sibling: if the owner is mid-job, the neighbour
        // steals immediately instead of waiting out its fallback poll.
        if self.queues.len() > 1 {
            self.queues[(queue + 1) % self.queues.len()]
                .ready
                .notify_one();
        }
    }

    fn pop_own(&self, worker: usize) -> Option<Job> {
        self.queues[worker]
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .pop_front()
    }

    /// Steals from the back of a sibling queue (the opposite end from the
    /// owner, minimizing contention and keeping stolen work coarse).
    fn steal(&self, thief: usize) -> Option<Job> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            let job = self.queues[victim]
                .jobs
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .pop_back();
            if job.is_some() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return job;
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        if let Some(job) = shared.pop_own(id).or_else(|| shared.steal(id)) {
            let results = execute_batch(&job.snapshot, &job.plans, job.batch_len);
            shared.executed[id].fetch_add(job.plans.len() as u64, Ordering::Relaxed);
            shared.batches.fetch_add(1, Ordering::Relaxed);
            // A dropped receiver just means the caller gave up waiting.
            let _ = job.reply.send((job.chunk, results));
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let shard = &shared.queues[id];
        let guard = shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            // Bounded wait: our own queue wakes us via the condvar, but
            // stealable work lands on sibling queues without notifying us.
            let _ = shard
                .ready
                .wait_timeout(guard, STEAL_POLL)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// A handle to an estimate submitted with [`Service::submit`]; resolve it
/// with [`PendingEstimate::wait`].
pub struct PendingEstimate {
    rx: mpsc::Receiver<(usize, Vec<f64>)>,
}

impl PendingEstimate {
    /// Blocks until the worker pool answers.
    pub fn wait(self) -> Result<f64, ServiceError> {
        let (_, results) = self.rx.recv().map_err(|_| ServiceError::Disconnected)?;
        results.first().copied().ok_or(ServiceError::Disconnected)
    }
}

/// A point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker thread count.
    pub workers: usize,
    /// Estimates executed per worker (index = worker id).
    pub executed: Vec<u64>,
    /// Jobs a worker took from a sibling's queue.
    pub steals: u64,
    /// Jobs executed in total (single estimates count as 1-query batches).
    pub batches: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
}

impl ServiceStats {
    /// Total estimates executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// The multi-threaded estimation service. See the module docs.
pub struct Service {
    catalog: Arc<Catalog>,
    plans: Arc<PlanCache>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl Service {
    /// Starts a service with `config.workers` worker threads reading from
    /// `catalog`.
    pub fn new(catalog: Arc<Catalog>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers)
                .map(|_| QueueShard {
                    jobs: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xseed-worker-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn estimation worker")
            })
            .collect();
        Service {
            catalog,
            plans: Arc::new(PlanCache::new(
                config.plan_cache_shards,
                config.plan_cache_capacity,
            )),
            shared,
            handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// The catalog this service estimates from.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn resolve(&self, doc: &str) -> Result<SynopsisSnapshot, ServiceError> {
        self.catalog
            .snapshot(doc)
            .ok_or_else(|| ServiceError::UnknownDocument(doc.to_string()))
    }

    /// Submits one query for estimation against `doc`'s current snapshot,
    /// round-robined onto a worker queue. Returns immediately.
    pub fn submit(&self, doc: &str, query: &str) -> Result<PendingEstimate, ServiceError> {
        let queue = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.submit_pinned(queue, doc, query)
    }

    /// Like [`Service::submit`], but pinned to a specific worker queue —
    /// callers with document-affinity (or tests exercising the stealing
    /// path) can direct related requests at one shard.
    pub fn submit_pinned(
        &self,
        queue: usize,
        doc: &str,
        query: &str,
    ) -> Result<PendingEstimate, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plan = self.plans.get_or_parse(query)?;
        let (tx, rx) = mpsc::channel();
        self.shared.push(
            queue % self.workers(),
            Job {
                snapshot,
                plans: vec![plan],
                batch_len: 1,
                chunk: 0,
                reply: tx,
            },
        );
        Ok(PendingEstimate { rx })
    }

    /// Estimates one query, blocking until a worker answers.
    pub fn estimate(&self, doc: &str, query: &str) -> Result<f64, ServiceError> {
        self.submit(doc, query)?.wait()
    }

    /// Estimates a batch of queries against one snapshot of `doc`,
    /// splitting it into per-worker chunks that execute as shared-memo
    /// snapshot passes. Results come back in input order. The whole batch
    /// is resolved against a single epoch: a concurrent update to `doc`
    /// never mixes epochs within one batch.
    pub fn estimate_batch(&self, doc: &str, queries: &[&str]) -> Result<Vec<f64>, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plans = queries
            .iter()
            .map(|q| self.plans.get_or_parse(q))
            .collect::<Result<Vec<_>, _>>()?;
        if plans.is_empty() {
            return Ok(Vec::new());
        }

        // Per-worker chunks, but never so fine that queue/channel overhead
        // dominates the estimates themselves.
        const MIN_CHUNK: usize = 8;
        let workers = self.workers();
        let chunks = workers.min(plans.len().div_ceil(MIN_CHUNK)).max(1);
        let chunk_size = plans.len().div_ceil(chunks);

        let (tx, rx) = mpsc::channel();
        let base = self.next_queue.fetch_add(chunks, Ordering::Relaxed);
        for (i, chunk) in plans.chunks(chunk_size).enumerate() {
            self.shared.push(
                (base + i) % workers,
                Job {
                    snapshot: snapshot.clone(),
                    plans: chunk.to_vec(),
                    batch_len: plans.len(),
                    chunk: i,
                    reply: tx.clone(),
                },
            );
        }
        drop(tx);

        let mut gathered: Vec<Option<Vec<f64>>> = vec![None; plans.len().div_ceil(chunk_size)];
        for _ in 0..gathered.len() {
            let (chunk, results) = rx.recv().map_err(|_| ServiceError::Disconnected)?;
            gathered[chunk] = Some(results);
        }
        Ok(gathered.into_iter().flatten().flatten().collect())
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: self.workers(),
            executed: self
                .shared
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            plan_cache: self.plans.stats(),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.queues {
            shard.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseed_core::{XseedConfig, XseedSynopsis};

    fn fig2_service(workers: usize) -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, ServiceConfig::with_workers(workers))
    }

    #[test]
    fn estimate_matches_direct_synopsis() {
        let service = fig2_service(2);
        let direct =
            XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
                .unwrap();
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*"] {
            let got = service.estimate("fig2", q).unwrap();
            let expected = direct.estimate(&xpathkit::parse(q).unwrap());
            assert!((got - expected).abs() < 1e-9, "{q}");
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 4);
        assert_eq!(stats.plan_cache.misses, 4);
    }

    #[test]
    fn batch_preserves_input_order_across_chunks() {
        let service = fig2_service(4);
        let queries: Vec<String> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*", "/a/*", "//p"]
            .iter()
            .cycle()
            .take(48)
            .map(|q| q.to_string())
            .collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let batch = service.estimate_batch("fig2", &refs).unwrap();
        assert_eq!(batch.len(), refs.len());
        for (q, got) in refs.iter().zip(&batch) {
            let single = service.estimate("fig2", q).unwrap();
            assert!((single - got).abs() < 1e-9, "{q}");
        }
        assert!(service.estimate_batch("fig2", &[]).unwrap().is_empty());
    }

    #[test]
    fn unknown_document_and_parse_errors() {
        let service = fig2_service(1);
        assert!(matches!(
            service.estimate("nope", "/a"),
            Err(ServiceError::UnknownDocument(_))
        ));
        assert!(matches!(
            service.estimate("fig2", "/["),
            Err(ServiceError::Parse(_))
        ));
        // Errors render.
        assert!(format!("{}", ServiceError::Disconnected).contains("shut down"));
    }

    #[test]
    fn pinned_submissions_are_stolen_by_idle_workers() {
        let service = fig2_service(4);
        // Pile everything onto worker 0's queue; with 4 workers the
        // siblings must steal at least some of it.
        let pending: Vec<PendingEstimate> = (0..64)
            .map(|_| service.submit_pinned(0, "fig2", "//s//p").unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 64);
        assert!(
            stats.steals > 0 || stats.executed[0] == 64,
            "either siblings stole or worker 0 drained everything: {stats:?}"
        );
        // On a multi-queue pile-up the plan cache should have one miss.
        assert_eq!(stats.plan_cache.misses, 1);
        assert_eq!(stats.plan_cache.hits, 63);
    }

    #[test]
    fn estimates_span_epochs_consistently() {
        let service = fig2_service(2);
        let before = service.estimate("fig2", "/a/zzz").unwrap();
        assert_eq!(before, 0.0);
        let (grafted, _) = service
            .catalog()
            .update("fig2", |syn| {
                let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
                syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
            })
            .unwrap();
        grafted.unwrap();
        let after = service.estimate("fig2", "/a/zzz").unwrap();
        assert!((after - 1.0).abs() < 1e-9);
    }
}
