//! The estimation service: a worker pool over the catalog.
//!
//! A [`Service`] owns `N` worker threads. Each worker has its **own**
//! request queue (a mutex + condvar pair — sharded, so submitters and
//! workers touching different queues never contend), and requests are
//! spread round-robin across the queues. An idle worker first drains its
//! own queue, then **steals** from the back of its siblings' queues before
//! sleeping, so one hot queue cannot strand work while other workers idle.
//!
//! Requests are resolved on the submitting thread — catalog snapshot
//! lookup (an `Arc` clone) and plan-cache lookup (sharded LRU) are both
//! cheap — so a queued job is entirely self-contained: snapshot + plans +
//! reply channel. Workers therefore never touch the catalog and are
//! immune to concurrent `LOAD`s/updates: they estimate against whatever
//! epoch the request was resolved at.
//!
//! Batches are split into per-worker chunks ([`Service::estimate_batch`]),
//! each executed as one snapshot pass over the shared frontier memo (see
//! [`crate::batch`]); the memo is built once per snapshot epoch and shared
//! by all workers.
//!
//! ## Backpressure and admission control
//!
//! Every queue is **bounded**: [`ServiceConfig::queue_capacity`] queries
//! per worker. Admission happens on the submitting thread *before*
//! anything is enqueued — a request's cost (1 for a single estimate, the
//! query count for a batch) is reserved against a queue's remaining
//! budget, falling back to sibling queues when the preferred one is full.
//! When no queue can take it, the request is **shed**: the submitter gets
//! [`ServiceError::Overloaded`] immediately (the daemon turns it into the
//! protocol's `OVERLOADED` reply), nothing is partially enqueued, and
//! in-flight work is untouched. Batches are admitted all-or-nothing: a
//! partially reserved batch releases its reservations and sheds whole, so
//! a client never receives a truncated result. The
//! accepted/shed/queued/peak-queued counters are surfaced through
//! [`Service::stats`] (and the `STATS` protocol verb) so operators can
//! see pressure before it becomes failure.

use crate::batch::execute_batch;
use crate::catalog::Catalog;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xpathkit::{ParseError, QueryPlan};
use xseed_core::SynopsisSnapshot;

/// Fallback interval at which an idle worker re-checks its siblings'
/// queues for stealable work. Pushes notify the target queue *and* one
/// sibling (see [`Shared::push`]), so steal latency is normally condvar
/// wake-up time; this poll only backstops the case where every notified
/// worker was already busy, and is long enough that an idle daemon stays
/// essentially asleep.
const STEAL_POLL: Duration = Duration::from_millis(50);

/// Errors surfaced by [`Service`] calls.
#[derive(Debug)]
pub enum ServiceError {
    /// The named document is not registered in the catalog.
    UnknownDocument(String),
    /// The query text failed to parse.
    Parse(ParseError),
    /// The request was shed by admission control: no worker queue had
    /// room for its cost. Nothing was enqueued; retrying after a backoff
    /// is safe. `queued` is the total number of queries queued across all
    /// workers at shed time, `capacity` the total queue budget
    /// (`workers × queue_capacity`).
    Overloaded {
        /// Queries queued across all worker queues when the shed happened.
        queued: usize,
        /// Total queue budget the service will accept.
        capacity: usize,
    },
    /// The worker pool shut down before answering.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDocument(name) => write!(f, "unknown document '{name}'"),
            ServiceError::Parse(err) => write!(f, "parse error: {err}"),
            ServiceError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: {queued} queries queued against a budget of {capacity}"
            ),
            ServiceError::Disconnected => write!(f, "service workers shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ParseError> for ServiceError {
    fn from(err: ParseError) -> Self {
        ServiceError::Parse(err)
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (and request-queue shards). Clamped to at least 1.
    pub workers: usize,
    /// Queue budget per worker, **in queries** (a batch of `n` queries
    /// costs `n`), clamped to at least 1. Requests beyond the budget are
    /// shed with [`ServiceError::Overloaded`] instead of growing queues
    /// without bound; a single batch larger than one queue's budget can
    /// never be admitted. See the module docs.
    pub queue_capacity: usize,
    /// Total plan-cache capacity (plans), spread over the cache shards.
    pub plan_cache_capacity: usize,
    /// Plan-cache shards; defaults to `4 × workers` to keep shard
    /// contention negligible.
    pub plan_cache_shards: usize,
}

impl ServiceConfig {
    /// A configuration with `workers` worker threads and defaults for the
    /// queue budget and plan cache.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        ServiceConfig {
            workers,
            queue_capacity: 1024,
            plan_cache_capacity: 4096,
            plan_cache_shards: workers * 4,
        }
    }

    /// Sets the per-worker queue budget (builder style).
    pub fn with_queue_capacity(mut self, queries: usize) -> Self {
        self.queue_capacity = queries.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::with_workers(workers)
    }
}

/// One self-contained unit of work: estimate `plans` against `snapshot`
/// and send the results (tagged with `chunk` for reassembly) to `reply`.
struct Job {
    snapshot: SynopsisSnapshot,
    plans: Vec<Arc<QueryPlan>>,
    /// Length of the whole logical batch this job is a chunk of; drives
    /// the memo policy uniformly across all chunks (see [`execute_batch`]).
    batch_len: usize,
    chunk: usize,
    reply: mpsc::Sender<(usize, Vec<f64>)>,
}

/// A queued entry: an estimation job, or a fence pausing the worker that
/// reaches it (see [`Service::pause_worker`]).
enum Work {
    Estimate(Job),
    Fence {
        /// Signalled (by dropping) when the worker reaches the fence.
        reached: mpsc::Sender<()>,
        /// The worker blocks here until the pause guard drops its sender.
        release: mpsc::Receiver<()>,
    },
}

struct QueueShard {
    jobs: Mutex<VecDeque<Work>>,
    ready: Condvar,
    /// Queries reserved against this queue's budget (queued jobs plus
    /// admission reservations not yet pushed). Fences cost nothing.
    depth: AtomicUsize,
}

struct Shared {
    queues: Vec<QueueShard>,
    /// Per-queue admission budget, in queries.
    queue_capacity: usize,
    shutdown: AtomicBool,
    steals: AtomicU64,
    batches: AtomicU64,
    accepted: AtomicU64,
    shed: AtomicU64,
    peak_queued: AtomicUsize,
    executed: Vec<AtomicU64>,
}

impl Shared {
    /// Reserves `cost` queries of `queue`'s budget; `false` when it does
    /// not fit. Admission is the *only* path that grows a queue, so the
    /// bound holds regardless of worker/stealer interleavings.
    fn try_reserve(&self, queue: usize, cost: usize) -> bool {
        self.queues[queue]
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                (cost <= self.queue_capacity.saturating_sub(depth)).then_some(depth + cost)
            })
            .is_ok()
    }

    fn release(&self, queue: usize, cost: usize) {
        self.queues[queue].depth.fetch_sub(cost, Ordering::Relaxed);
    }

    fn total_queued(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.depth.load(Ordering::Relaxed))
            .sum()
    }

    fn note_peak(&self) {
        self.peak_queued
            .fetch_max(self.total_queued(), Ordering::Relaxed);
    }

    /// Finds a queue with room for `cost`, preferring `preferred` and —
    /// unless `pinned` — falling back to siblings. Reserves the budget on
    /// success; the caller must then `push` (or `release` on abort).
    fn admit(&self, preferred: usize, cost: usize, pinned: bool) -> Option<usize> {
        let n = self.queues.len();
        let preferred = preferred % n;
        if self.try_reserve(preferred, cost) {
            return Some(preferred);
        }
        if !pinned {
            for offset in 1..n {
                let queue = (preferred + offset) % n;
                if self.try_reserve(queue, cost) {
                    return Some(queue);
                }
            }
        }
        None
    }

    fn push(&self, queue: usize, work: Work) {
        let shard = &self.queues[queue];
        shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push_back(work);
        shard.ready.notify_one();
        // Also wake one sibling: if the owner is mid-job, the neighbour
        // steals immediately instead of waiting out its fallback poll.
        if self.queues.len() > 1 {
            self.queues[(queue + 1) % self.queues.len()]
                .ready
                .notify_one();
        }
    }

    fn pop_own(&self, worker: usize) -> Option<Work> {
        let work = self.queues[worker]
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .pop_front();
        if let Some(Work::Estimate(job)) = &work {
            self.release(worker, job.plans.len());
        }
        work
    }

    /// Steals from the back of a sibling queue (the opposite end from the
    /// owner, minimizing contention and keeping stolen work coarse).
    /// Fences are never stolen — they pause the queue's *owner* — so a
    /// victim whose back entry is a fence is skipped.
    fn steal(&self, thief: usize) -> Option<Work> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            let mut jobs = self.queues[victim]
                .jobs
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            if matches!(jobs.back(), Some(Work::Estimate(_))) {
                let work = jobs.pop_back();
                drop(jobs);
                if let Some(Work::Estimate(job)) = &work {
                    self.release(victim, job.plans.len());
                }
                self.steals.fetch_add(1, Ordering::Relaxed);
                return work;
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        match shared.pop_own(id).or_else(|| shared.steal(id)) {
            Some(Work::Estimate(job)) => {
                let results = execute_batch(&job.snapshot, &job.plans, job.batch_len);
                shared.executed[id].fetch_add(job.plans.len() as u64, Ordering::Relaxed);
                shared.batches.fetch_add(1, Ordering::Relaxed);
                // A dropped receiver just means the caller gave up waiting.
                let _ = job.reply.send((job.chunk, results));
                continue;
            }
            Some(Work::Fence { reached, release }) => {
                drop(reached);
                // Held until the pause guard drops its sender — but never
                // past shutdown, so dropping the Service while a guard is
                // alive cannot hang the join in [`Service::drop`].
                loop {
                    match release.recv_timeout(STEAL_POLL) {
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shared.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                    }
                }
                continue;
            }
            None => {}
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let shard = &shared.queues[id];
        let guard = shard
            .jobs
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            // Bounded wait: our own queue wakes us via the condvar, but
            // stealable work lands on sibling queues without notifying us.
            let _ = shard
                .ready
                .wait_timeout(guard, STEAL_POLL)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// A handle to an estimate submitted with [`Service::submit`]; resolve it
/// with [`PendingEstimate::wait`].
pub struct PendingEstimate {
    rx: mpsc::Receiver<(usize, Vec<f64>)>,
}

impl PendingEstimate {
    /// Blocks until the worker pool answers.
    pub fn wait(self) -> Result<f64, ServiceError> {
        let (_, results) = self.rx.recv().map_err(|_| ServiceError::Disconnected)?;
        results.first().copied().ok_or(ServiceError::Disconnected)
    }
}

/// A point-in-time view of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker thread count.
    pub workers: usize,
    /// Per-worker queue budget, in queries.
    pub queue_capacity: usize,
    /// Estimates executed per worker (index = worker id).
    pub executed: Vec<u64>,
    /// Jobs a worker took from a sibling's queue.
    pub steals: u64,
    /// Jobs executed in total (single estimates count as 1-query batches).
    pub batches: u64,
    /// Queries admitted by admission control since startup.
    pub accepted: u64,
    /// Queries shed with [`ServiceError::Overloaded`] since startup.
    pub shed: u64,
    /// Queries currently queued (reserved budget) across all workers.
    pub queued: usize,
    /// High-water mark of [`ServiceStats::queued`] since startup.
    pub peak_queued: usize,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
}

impl ServiceStats {
    /// Total estimates executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// The multi-threaded estimation service. See the module docs.
pub struct Service {
    catalog: Arc<Catalog>,
    plans: Arc<PlanCache>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl Service {
    /// Starts a service with `config.workers` worker threads reading from
    /// `catalog`.
    pub fn new(catalog: Arc<Catalog>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers)
                .map(|_| QueueShard {
                    jobs: Mutex::new(VecDeque::new()),
                    ready: Condvar::new(),
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            queue_capacity: config.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak_queued: AtomicUsize::new(0),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("xseed-worker-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn estimation worker")
            })
            .collect();
        Service {
            catalog,
            plans: Arc::new(PlanCache::new(
                config.plan_cache_shards,
                config.plan_cache_capacity,
            )),
            shared,
            handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// The catalog this service estimates from.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn resolve(&self, doc: &str) -> Result<SynopsisSnapshot, ServiceError> {
        self.catalog
            .snapshot(doc)
            .ok_or_else(|| ServiceError::UnknownDocument(doc.to_string()))
    }

    /// Submits one query for estimation against `doc`'s current snapshot,
    /// round-robined onto a worker queue (falling back to siblings when
    /// the preferred queue is full). Returns immediately;
    /// [`ServiceError::Overloaded`] when every queue's budget is
    /// exhausted.
    pub fn submit(&self, doc: &str, query: &str) -> Result<PendingEstimate, ServiceError> {
        let queue = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
        self.submit_inner(queue, doc, query, false)
    }

    /// Like [`Service::submit`], but pinned to a specific worker queue —
    /// callers with document-affinity (or tests exercising the stealing
    /// path) can direct related requests at one shard. Pinned requests do
    /// not fall back: a full pinned queue sheds immediately.
    pub fn submit_pinned(
        &self,
        queue: usize,
        doc: &str,
        query: &str,
    ) -> Result<PendingEstimate, ServiceError> {
        self.submit_inner(queue, doc, query, true)
    }

    fn submit_inner(
        &self,
        queue: usize,
        doc: &str,
        query: &str,
        pinned: bool,
    ) -> Result<PendingEstimate, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plan = self.plans.get_or_parse(query)?;
        let Some(queue) = self.shared.admit(queue, 1, pinned) else {
            return Err(self.shed(1));
        };
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.note_peak();
        let (tx, rx) = mpsc::channel();
        self.shared.push(
            queue,
            Work::Estimate(Job {
                snapshot,
                plans: vec![plan],
                batch_len: 1,
                chunk: 0,
                reply: tx,
            }),
        );
        Ok(PendingEstimate { rx })
    }

    /// Records a shed of `cost` queries and builds the overload error.
    fn shed(&self, cost: usize) -> ServiceError {
        self.shared.shed.fetch_add(cost as u64, Ordering::Relaxed);
        ServiceError::Overloaded {
            queued: self.shared.total_queued(),
            capacity: self.shared.queue_capacity * self.workers(),
        }
    }

    /// Pauses the worker that owns `queue`: a fence is enqueued (bypassing
    /// the queue budget) and the worker parks on it until the returned
    /// guard is dropped. Jobs queued behind the fence stay queued — on a
    /// multi-worker service siblings may steal them, so pausing *all*
    /// workers quiesces the pool for maintenance. Used by the overload
    /// tests to make shedding deterministic.
    ///
    /// Shutdown overrides the fence: dropping the [`Service`] while a
    /// guard is alive releases the parked worker (within the fence's
    /// poll interval) instead of hanging the join.
    pub fn pause_worker(&self, queue: usize) -> WorkerPause {
        let (reached_tx, reached_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        self.shared.push(
            queue % self.workers(),
            Work::Fence {
                reached: reached_tx,
                release: release_rx,
            },
        );
        WorkerPause {
            _release: release_tx,
            reached: reached_rx,
        }
    }

    /// Estimates one query, blocking until a worker answers.
    pub fn estimate(&self, doc: &str, query: &str) -> Result<f64, ServiceError> {
        self.submit(doc, query)?.wait()
    }

    /// Estimates a batch of queries against one snapshot of `doc`,
    /// splitting it into per-worker chunks that execute as shared-memo
    /// snapshot passes. Results come back in input order. The whole batch
    /// is resolved against a single epoch: a concurrent update to `doc`
    /// never mixes epochs within one batch.
    ///
    /// Admission is all-or-nothing: either every chunk fits the queue
    /// budgets and the batch runs whole, or nothing is enqueued and the
    /// call sheds with [`ServiceError::Overloaded`]. A batch larger than
    /// the total queue budget therefore always sheds — split it client
    /// side.
    pub fn estimate_batch(&self, doc: &str, queries: &[&str]) -> Result<Vec<f64>, ServiceError> {
        let snapshot = self.resolve(doc)?;
        let plans = queries
            .iter()
            .map(|q| self.plans.get_or_parse(q))
            .collect::<Result<Vec<_>, _>>()?;
        if plans.is_empty() {
            return Ok(Vec::new());
        }

        // Per-worker chunks, but never so fine that queue/channel overhead
        // dominates the estimates themselves.
        const MIN_CHUNK: usize = 8;
        let workers = self.workers();
        let chunks = workers.min(plans.len().div_ceil(MIN_CHUNK)).max(1);
        let chunk_size = plans.len().div_ceil(chunks);

        // Reserve budget for every chunk before enqueueing anything, so a
        // shed batch leaves no partial work behind.
        let base = self.next_queue.fetch_add(chunks, Ordering::Relaxed);
        let mut placements: Vec<(usize, usize)> = Vec::with_capacity(chunks);
        for (i, chunk) in plans.chunks(chunk_size).enumerate() {
            match self.shared.admit(base + i, chunk.len(), false) {
                Some(queue) => placements.push((queue, chunk.len())),
                None => {
                    for &(queue, cost) in &placements {
                        self.shared.release(queue, cost);
                    }
                    return Err(self.shed(plans.len()));
                }
            }
        }
        self.shared
            .accepted
            .fetch_add(plans.len() as u64, Ordering::Relaxed);
        self.shared.note_peak();

        let (tx, rx) = mpsc::channel();
        for ((i, chunk), &(queue, _)) in plans.chunks(chunk_size).enumerate().zip(&placements) {
            self.shared.push(
                queue,
                Work::Estimate(Job {
                    snapshot: snapshot.clone(),
                    plans: chunk.to_vec(),
                    batch_len: plans.len(),
                    chunk: i,
                    reply: tx.clone(),
                }),
            );
        }
        drop(tx);

        let mut gathered: Vec<Option<Vec<f64>>> = vec![None; plans.len().div_ceil(chunk_size)];
        for _ in 0..gathered.len() {
            let (chunk, results) = rx.recv().map_err(|_| ServiceError::Disconnected)?;
            gathered[chunk] = Some(results);
        }
        Ok(gathered.into_iter().flatten().flatten().collect())
    }

    /// Current service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            workers: self.workers(),
            queue_capacity: self.shared.queue_capacity,
            executed: self
                .shared
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            queued: self.shared.total_queued(),
            peak_queued: self.shared.peak_queued.load(Ordering::Relaxed),
            plan_cache: self.plans.stats(),
        }
    }
}

/// Guard returned by [`Service::pause_worker`]. The paused worker resumes
/// when the guard is dropped (or [`WorkerPause::resume`] is called).
pub struct WorkerPause {
    _release: mpsc::Sender<()>,
    reached: mpsc::Receiver<()>,
}

impl WorkerPause {
    /// Blocks until the worker has actually reached the fence (i.e. it is
    /// parked and will execute nothing queued behind it).
    pub fn wait_until_paused(&self) {
        // The worker *drops* its end on arrival; RecvError is the signal.
        let _ = self.reached.recv();
    }

    /// Resumes the worker (equivalent to dropping the guard).
    pub fn resume(self) {}
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in &self.shared.queues {
            shard.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseed_core::{XseedConfig, XseedSynopsis};

    fn fig2_service(workers: usize) -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, ServiceConfig::with_workers(workers))
    }

    #[test]
    fn estimate_matches_direct_synopsis() {
        let service = fig2_service(2);
        let direct =
            XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
                .unwrap();
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*"] {
            let got = service.estimate("fig2", q).unwrap();
            let expected = direct.estimate(&xpathkit::parse(q).unwrap());
            assert!((got - expected).abs() < 1e-9, "{q}");
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 4);
        assert_eq!(stats.plan_cache.misses, 4);
    }

    #[test]
    fn batch_preserves_input_order_across_chunks() {
        let service = fig2_service(4);
        let queries: Vec<String> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*", "/a/*", "//p"]
            .iter()
            .cycle()
            .take(48)
            .map(|q| q.to_string())
            .collect();
        let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
        let batch = service.estimate_batch("fig2", &refs).unwrap();
        assert_eq!(batch.len(), refs.len());
        for (q, got) in refs.iter().zip(&batch) {
            let single = service.estimate("fig2", q).unwrap();
            assert!((single - got).abs() < 1e-9, "{q}");
        }
        assert!(service.estimate_batch("fig2", &[]).unwrap().is_empty());
    }

    #[test]
    fn unknown_document_and_parse_errors() {
        let service = fig2_service(1);
        assert!(matches!(
            service.estimate("nope", "/a"),
            Err(ServiceError::UnknownDocument(_))
        ));
        assert!(matches!(
            service.estimate("fig2", "/["),
            Err(ServiceError::Parse(_))
        ));
        // Errors render.
        assert!(format!("{}", ServiceError::Disconnected).contains("shut down"));
    }

    #[test]
    fn pinned_submissions_are_stolen_by_idle_workers() {
        let service = fig2_service(4);
        // Pile everything onto worker 0's queue; with 4 workers the
        // siblings must steal at least some of it.
        let pending: Vec<PendingEstimate> = (0..64)
            .map(|_| service.submit_pinned(0, "fig2", "//s//p").unwrap())
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.total_executed(), 64);
        assert!(
            stats.steals > 0 || stats.executed[0] == 64,
            "either siblings stole or worker 0 drained everything: {stats:?}"
        );
        // On a multi-queue pile-up the plan cache should have one miss.
        assert_eq!(stats.plan_cache.misses, 1);
        assert_eq!(stats.plan_cache.hits, 63);
    }

    fn fig2_service_with(config: ServiceConfig) -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, config)
    }

    #[test]
    fn batch_exceeding_total_budget_sheds_whole() {
        let service = fig2_service_with(ServiceConfig::with_workers(2).with_queue_capacity(4));
        let queries: Vec<&str> = std::iter::repeat_n("/a/c/s", 20).collect();
        let err = service.estimate_batch("fig2", &queries).unwrap_err();
        assert!(
            matches!(err, ServiceError::Overloaded { capacity: 8, .. }),
            "{err}"
        );
        let stats = service.stats();
        assert_eq!(stats.shed, 20);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.queued, 0, "shed batches must release reservations");
        // A batch that fits still runs.
        assert_eq!(
            service.estimate_batch("fig2", &queries[..4]).unwrap().len(),
            4
        );
        assert_eq!(service.stats().accepted, 4);
    }

    #[test]
    fn paused_worker_makes_sheds_deterministic() {
        let service = fig2_service_with(ServiceConfig::with_workers(1).with_queue_capacity(2));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();

        let mut pending = Vec::new();
        let mut sheds = 0;
        for _ in 0..5 {
            match service.submit("fig2", "/a/c/s") {
                Ok(p) => pending.push(p),
                Err(ServiceError::Overloaded { queued, capacity }) => {
                    assert_eq!((queued, capacity), (2, 2));
                    sheds += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!((pending.len(), sheds), (2, 3));
        let stats = service.stats();
        assert_eq!((stats.accepted, stats.shed), (2, 3));
        assert_eq!((stats.queued, stats.peak_queued), (2, 2));

        pause.resume();
        for p in pending {
            assert!((p.wait().unwrap() - 5.0).abs() < 1e-9);
        }
        assert_eq!(service.stats().queued, 0);
    }

    #[test]
    fn dropping_the_service_releases_a_live_fence() {
        let service = fig2_service_with(ServiceConfig::with_workers(1));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();
        // Shutdown must override the fence: this would hang forever if
        // the parked worker only listened to the guard.
        drop(service);
        drop(pause);
    }

    #[test]
    fn siblings_steal_past_a_fence() {
        let service = fig2_service_with(ServiceConfig::with_workers(2));
        let pause = service.pause_worker(0);
        pause.wait_until_paused();
        // Work pinned behind the fence is stolen by the idle sibling.
        let pending: Vec<PendingEstimate> = (0..8)
            .map(|_| service.submit_pinned(0, "fig2", "//p").unwrap())
            .collect();
        for p in pending {
            assert!((p.wait().unwrap() - 17.0).abs() < 1e-9);
        }
        let stats = service.stats();
        assert_eq!(stats.executed[0], 0, "paused worker must not execute");
        assert_eq!(stats.executed[1], 8);
        drop(pause);
    }

    #[test]
    fn estimates_span_epochs_consistently() {
        let service = fig2_service(2);
        let before = service.estimate("fig2", "/a/zzz").unwrap();
        assert_eq!(before, 0.0);
        let (grafted, _) = service
            .catalog()
            .update("fig2", |syn| {
                let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
                syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
            })
            .unwrap();
        grafted.unwrap();
        let after = service.estimate("fig2", "/a/zzz").unwrap();
        assert!((after - 1.0).abs() < 1e-9);
    }
}
