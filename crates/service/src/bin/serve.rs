//! `xseed-serve` — the XSEED estimation daemon.
//!
//! Speaks the line protocol of [`xseed_service::protocol`] over stdin
//! (default) or TCP (`--tcp ADDR`, every connection multiplexed onto one
//! nonblocking epoll event loop, all sharing one worker pool and
//! catalog). The complete protocol reference lives in
//! `docs/PROTOCOL.md`, the tuning guide in `docs/OPERATIONS.md`, the
//! system tour in `docs/ARCHITECTURE.md`.
//!
//! ```text
//! xseed-serve [--workers N] [--queue-capacity Q] [--tcp ADDR]
//!             [--max-connections C] [--idle-timeout SECS]
//!             [--client-rate R] [--client-burst B]
//!             [--allow-fs-load] [--maintain-error-mass X]
//!             [--build-partitions N] [--snapshot-dir DIR]
//!             [--no-observability]
//! ```
//!
//! * `--workers N` — estimation worker threads (default: the CPU count).
//! * `--queue-capacity Q` — per-worker queue budget in queries (default
//!   1024); requests past the budget get an `OVERLOADED` reply.
//! * `--tcp ADDR` — serve TCP instead of stdin, e.g. `127.0.0.1:7878`.
//! * `--max-connections C` — TCP sessions served concurrently (default
//!   64); excess connections are refused with one `OVERLOADED` line.
//! * `--idle-timeout SECS` — close TCP sessions idle for this long
//!   (default 300; 0 disables).
//! * `--client-rate R` — per-connection token-bucket rate limit, request
//!   lines per second (fractional allowed; default off). A client past
//!   its budget gets `OVERLOADED rate=… burst=…` per excess request
//!   while every other connection keeps its own untouched budget; sheds
//!   are counted in `STATS` (`rate_limited=`) and traced
//!   (`rate_limit_on`/`rate_limit_off`). TCP only.
//! * `--client-burst B` — bucket depth in requests (default: the rate,
//!   i.e. one second of budget; clamped to ≥ 1). Requires
//!   `--client-rate`.
//! * `--allow-fs-load` — permit `LOAD <name> <path>` filesystem reads for
//!   TCP sessions (stdin sessions always may; see the security note in
//!   `docs/PROTOCOL.md`).
//! * `--maintain-error-mass X` — make every `LOAD` retain its document
//!   and rebuild the HET automatically once `FEEDBACK` accumulates `X`
//!   absolute error (per document). Without it, retention and policies
//!   are per-document (`LOAD … retain` + `MAINTAIN`); see
//!   `docs/OPERATIONS.md` for sizing the bound.
//! * `--build-partitions N` — build every loaded synopsis with `N`
//!   parallel partition workers (per-LOAD `partitions=<n>` overrides).
//!   Partitioned builds are bit-identical to monolithic ones, so the flag
//!   changes build latency only, never estimates; see `docs/OPERATIONS.md`
//!   ("Partitioned construction") for measured speedups.
//! * `--snapshot-dir DIR` — warm-start from `DIR` at boot: every
//!   `*.xsnap` snapshot that decodes is served under its file stem;
//!   every one that doesn't is quarantined (renamed to `.corrupt`,
//!   logged, counted in `STATS`). The boot itself is never refused.
//!   The directory is created if missing.
//! * `--no-observability` — skip allocating the metrics/trace layer:
//!   `METRICS` and `TRACE` answer `ERR observability is disabled`, and
//!   `STATS` omits the q-error keys. On by default because the recording
//!   cost is a handful of relaxed atomic adds per request; see
//!   `docs/OPERATIONS.md` ("Reading the metrics").
//!
//! Example session:
//!
//! ```text
//! $ printf 'LOAD demo builtin:xmark@0.05\nEST demo //item\nQUIT\n' | xseed-serve
//! OK loaded name=demo epoch=0 vertices=… elements=…
//! OK …
//! OK bye
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use xseed_service::protocol::ProtocolOptions;
use xseed_service::{
    serve_stream, Catalog, MaintenancePolicy, ServerConfig, Service, ServiceConfig, TcpServer,
};

struct Args {
    workers: Option<usize>,
    queue_capacity: Option<usize>,
    tcp: Option<String>,
    max_connections: usize,
    idle_timeout_secs: u64,
    client_rate: Option<f64>,
    client_burst: Option<f64>,
    allow_fs_load: bool,
    maintain_error_mass: Option<f64>,
    build_partitions: Option<usize>,
    snapshot_dir: Option<String>,
    observability: bool,
}

const USAGE: &str = "usage: xseed-serve [--workers N] [--queue-capacity Q] [--tcp ADDR] \
                     [--max-connections C] [--idle-timeout SECS] [--client-rate R] \
                     [--client-burst B] [--allow-fs-load] [--maintain-error-mass X] \
                     [--build-partitions N] [--snapshot-dir DIR] [--no-observability]";

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        workers: None,
        queue_capacity: None,
        tcp: None,
        max_connections: 64,
        idle_timeout_secs: 300,
        client_rate: None,
        client_burst: None,
        allow_fs_load: false,
        maintain_error_mass: None,
        build_partitions: None,
        snapshot_dir: None,
        observability: true,
    };
    let mut it = std::env::args().skip(1);
    let parse = |flag: &str, value: Option<String>| -> Result<u64, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value '{v}'"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => args.workers = Some(parse("--workers", it.next())? as usize),
            "--queue-capacity" => {
                args.queue_capacity = Some(parse("--queue-capacity", it.next())? as usize)
            }
            "--tcp" => args.tcp = Some(it.next().ok_or("--tcp needs an address")?),
            "--max-connections" => {
                args.max_connections = parse("--max-connections", it.next())? as usize
            }
            "--idle-timeout" => args.idle_timeout_secs = parse("--idle-timeout", it.next())?,
            "--client-rate" => {
                let flag = "--client-rate";
                let v = it.next().ok_or(format!("{flag} needs a value"))?;
                let rate: f64 = v.parse().map_err(|_| format!("bad {flag} value '{v}'"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("bad {flag} value '{v}' (want a positive number)"));
                }
                args.client_rate = Some(rate);
            }
            "--client-burst" => {
                let flag = "--client-burst";
                let v = it.next().ok_or(format!("{flag} needs a value"))?;
                let burst: f64 = v.parse().map_err(|_| format!("bad {flag} value '{v}'"))?;
                if !burst.is_finite() || burst < 1.0 {
                    return Err(format!("bad {flag} value '{v}' (want a number >= 1)"));
                }
                args.client_burst = Some(burst);
            }
            "--allow-fs-load" => args.allow_fs_load = true,
            "--maintain-error-mass" => {
                let flag = "--maintain-error-mass";
                let v = it.next().ok_or(format!("{flag} needs a value"))?;
                let bound: f64 = v.parse().map_err(|_| format!("bad {flag} value '{v}'"))?;
                if !bound.is_finite() || bound <= 0.0 {
                    return Err(format!("bad {flag} value '{v}' (want a positive number)"));
                }
                args.maintain_error_mass = Some(bound);
            }
            "--build-partitions" => {
                let n = parse("--build-partitions", it.next())? as usize;
                if n == 0 {
                    return Err("bad --build-partitions value '0' (want >= 1)".to_string());
                }
                args.build_partitions = Some(n);
            }
            "--snapshot-dir" => {
                args.snapshot_dir = Some(it.next().ok_or("--snapshot-dir needs a directory")?)
            }
            "--no-observability" => args.observability = false,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.client_burst.is_some() && args.client_rate.is_none() {
        return Err("--client-burst needs --client-rate".to_string());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = match args.workers {
        Some(n) => ServiceConfig::with_workers(n),
        None => ServiceConfig::default(),
    };
    if let Some(q) = args.queue_capacity {
        config = config.with_queue_capacity(q);
    }
    config = config.with_observability(args.observability);
    eprintln!(
        "xseed-serve: {} estimation worker(s), queue budget {} queries/worker; \
         type HELP for commands",
        config.workers, config.queue_capacity
    );
    let service = Arc::new(Service::new(Arc::new(Catalog::new()), config));
    if let Some(dir) = &args.snapshot_dir {
        // Warm start is graceful degradation by design: healthy snapshots
        // are served, corrupt ones are quarantined and logged, and even a
        // directory-level failure only costs the warm start — never the
        // boot.
        match xseed_service::warm_start(service.catalog(), std::path::Path::new(dir)) {
            Ok(warm) => {
                service.note_warm_start(&warm);
                eprintln!(
                    "xseed-serve: warm start from {dir}: {} snapshot(s) restored, \
                     {} quarantined",
                    warm.loaded.len(),
                    warm.quarantined.len()
                );
            }
            Err(e) => eprintln!("xseed-serve: warm start from {dir} failed: {e}"),
        }
    }
    let auto_maintenance = args
        .maintain_error_mass
        .map(MaintenancePolicy::ErrorMassBound);
    if let Some(MaintenancePolicy::ErrorMassBound(bound)) = auto_maintenance {
        eprintln!(
            "xseed-serve: self-maintenance armed — every LOAD retains its document \
             and rebuilds the HET at {bound} accumulated error"
        );
    }

    match args.tcp {
        Some(addr) => {
            // Network sessions only read server files when explicitly
            // allowed; builtin dataset scales stay capped either way.
            let mut options = ProtocolOptions::remote();
            options.allow_fs_load = args.allow_fs_load;
            options.auto_maintenance = auto_maintenance;
            options.build_partitions = args.build_partitions;
            if let Some(rate) = args.client_rate {
                eprintln!(
                    "xseed-serve: per-client rate limit armed — {rate} request(s)/sec, \
                     burst {}",
                    args.client_burst.unwrap_or(rate).max(1.0)
                );
            }
            let server_config = ServerConfig {
                max_connections: args.max_connections,
                idle_timeout: (args.idle_timeout_secs > 0)
                    .then(|| Duration::from_secs(args.idle_timeout_secs)),
                client_rate: args.client_rate,
                client_burst: args.client_burst,
                options,
            };
            let server = match TcpServer::bind(&addr, server_config) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match server.local_addr() {
                Ok(local) => eprintln!("xseed-serve listening on {local}"),
                Err(e) => eprintln!("xseed-serve listening (address unavailable: {e})"),
            }
            if let Err(e) = server.run(service) {
                eprintln!("tcp server error: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdin = std::io::stdin();
            let mut options = ProtocolOptions::local();
            options.auto_maintenance = auto_maintenance;
            options.build_partitions = args.build_partitions;
            serve_stream(&service, &options, stdin.lock(), std::io::stdout().lock());
        }
    }
    ExitCode::SUCCESS
}
