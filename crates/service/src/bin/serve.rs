//! `xseed-serve` — the XSEED estimation daemon.
//!
//! Speaks the line protocol of [`xseed_service::protocol`] over stdin
//! (default) or TCP (`--tcp ADDR`, one thread per connection, all sharing
//! one worker pool and catalog):
//!
//! ```text
//! xseed-serve [--workers N] [--tcp 127.0.0.1:7878]
//! ```
//!
//! Example session:
//!
//! ```text
//! $ printf 'LOAD demo builtin:xmark@0.05\nEST demo //item\nQUIT\n' | xseed-serve
//! OK loaded name=demo epoch=0 vertices=… elements=…
//! OK …
//! OK bye
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use xseed_service::protocol::{handle_line, ProtocolOptions, Response};
use xseed_service::{Catalog, Service, ServiceConfig};

struct Args {
    workers: Option<usize>,
    tcp: Option<String>,
    allow_fs_load: bool,
}

const USAGE: &str = "usage: xseed-serve [--workers N] [--tcp ADDR] [--allow-fs-load]";

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        workers: None,
        tcp: None,
        allow_fs_load: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                args.workers = Some(v.parse().map_err(|_| format!("bad worker count '{v}'"))?);
            }
            "--tcp" => {
                args.tcp = Some(it.next().ok_or("--tcp needs an address")?);
            }
            "--allow-fs-load" => args.allow_fs_load = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(args))
}

fn serve_stream(
    service: &Service,
    options: &ProtocolOptions,
    input: impl BufRead,
    mut output: impl Write,
) {
    for line in input.lines() {
        let Ok(line) = line else { return };
        match handle_line(service, &line, options) {
            Response::Line(reply) => {
                if writeln!(output, "{reply}")
                    .and_then(|()| output.flush())
                    .is_err()
                {
                    return;
                }
            }
            Response::Silent => {}
            Response::Quit => {
                let _ = writeln!(output, "OK bye");
                let _ = output.flush();
                return;
            }
        }
    }
}

fn serve_tcp(service: Arc<Service>, options: ProtocolOptions, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("xseed-serve listening on {}", listener.local_addr()?);
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        let stream: TcpStream = stream?;
        let service = service.clone();
        let options = options.clone();
        sessions.retain(|h| !h.is_finished());
        sessions.push(std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            serve_stream(&service, &options, reader, stream);
        }));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let config = match args.workers {
        Some(n) => ServiceConfig::with_workers(n),
        None => ServiceConfig::default(),
    };
    eprintln!(
        "xseed-serve: {} estimation worker(s); type HELP for commands",
        config.workers
    );
    let service = Arc::new(Service::new(Arc::new(Catalog::new()), config));

    match args.tcp {
        Some(addr) => {
            // Network sessions only read server files when explicitly
            // allowed; builtin dataset scales stay capped either way.
            let mut options = ProtocolOptions::remote();
            options.allow_fs_load = args.allow_fs_load;
            if let Err(e) = serve_tcp(service, options, &addr) {
                eprintln!("tcp server error: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let stdin = std::io::stdin();
            serve_stream(
                &service,
                &ProtocolOptions::local(),
                stdin.lock(),
                std::io::stdout().lock(),
            );
        }
    }
    ExitCode::SUCCESS
}
