//! `xseed-netpipe` — a line-oriented TCP session driver for `xseed-serve`.
//!
//! Connects to a running daemon, forwards each stdin line as one request,
//! and prints each reply to stdout — which turns the scripted-session
//! transcripts CI diffs over stdin into transcripts of the *TCP event
//! loop*: `examples/netloop_session.txt` runs through this tool against a
//! live daemon (the `NET_SMOKE` CI step) and the output is normalized and
//! diffed like every other `examples/*_session.expected`.
//!
//! ```text
//! xseed-netpipe ADDR [--retry SECS]
//! ```
//!
//! * `ADDR` — the daemon's `--tcp` address, e.g. `127.0.0.1:7878`.
//! * `--retry SECS` — keep retrying the connect for this long (default 5,
//!   covering the daemon's startup in scripted runs).
//!
//! Protocol awareness is minimal but sufficient: replies are one line
//! each, except `OK metrics lines=<n>` and `OK trace n=<k> …`, whose
//! headers announce how many exposition lines follow (see
//! `docs/PROTOCOL.md`) — those are read and printed too. Two directives
//! are interpreted by the pipe itself instead of being sent:
//!
//! * `#RECONNECT` — drop the connection and open a fresh one (a new
//!   session: new token bucket, same shared catalog). Lets one transcript
//!   exercise multi-session behavior, e.g. a rate-limited session
//!   followed by a fresh session reading `STATS`.
//! * other `#…` lines — sent as protocol comments (the server answers
//!   nothing, matching stdin sessions).
//!
//! Exits on stdin EOF (after draining replies), on `OK bye`, or when the
//! server closes the connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn connect(addr: &str, retry: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + retry;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
        }
    }
}

/// How many extra reply lines a header line announces (`OK metrics
/// lines=<n>` and `OK trace n=<k> …`; everything else is single-line).
fn extra_reply_lines(header: &str) -> usize {
    for (prefix, stop_at_space) in [("OK metrics lines=", false), ("OK trace n=", true)] {
        if let Some(rest) = header.strip_prefix(prefix) {
            let digits = if stop_at_space {
                rest.split_whitespace().next().unwrap_or("")
            } else {
                rest.trim_end()
            };
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

fn run(addr: &str, retry: Duration) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut session: Option<(BufReader<TcpStream>, TcpStream)> = None;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        if line.trim() == "#RECONNECT" {
            session = None;
            continue;
        }
        if session.is_none() {
            let stream = connect(addr, retry)?;
            let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
            session = Some((reader, stream));
        }
        let (reader, writer) = session.as_mut().expect("session just ensured");
        writeln!(writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        // Comments and blank lines are answered with silence; don't
        // wait for a reply.
        let sent = line.trim_start();
        if sent.is_empty() || sent.starts_with('#') {
            continue;
        }
        let mut reply = String::new();
        let mut remaining = 1 + {
            let mut first = String::new();
            let n = reader
                .read_line(&mut first)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-session".to_string());
            }
            reply.push_str(&first);
            extra_reply_lines(first.trim_end())
        } - 1;
        let quit = reply.trim_end() == "OK bye";
        while remaining > 0 {
            let n = reader
                .read_line(&mut reply)
                .map_err(|e| format!("read failed: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-reply".to_string());
            }
            remaining -= 1;
        }
        out.write_all(reply.as_bytes())
            .map_err(|e| format!("stdout write failed: {e}"))?;
        if quit {
            session = None;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut retry = Duration::from_secs(5);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--retry" => {
                let v = it.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(secs) => retry = Duration::from_secs(secs),
                    Err(_) => {
                        eprintln!("bad --retry value '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: xseed-netpipe ADDR [--retry SECS]");
                return ExitCode::SUCCESS;
            }
            other if addr.is_none() => addr = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: xseed-netpipe ADDR [--retry SECS]");
        return ExitCode::FAILURE;
    };
    if let Err(msg) = run(&addr, retry) {
        eprintln!("xseed-netpipe: {msg}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
