//! The batch executor: many queries, one snapshot pass.
//!
//! A batch is estimated by a single [`xseed_core::StreamingMatcher`] with the
//! snapshot's shared [`xseed_core::FrontierMemo`] installed: the
//! traveler's expansion is recorded once per snapshot epoch and each query
//! replays it, skipping the per-node footprint arithmetic and recursion
//! tracking of the cold pass. The matcher's scratch buffers stay warm
//! across the whole batch. Batches homogeneous in query class get the
//! best locality (simple paths may even short-circuit through the HET),
//! but heterogeneity only costs the reuse, never correctness.
//!
//! Plans are estimated through the snapshot's compiled-query cache
//! ([`xseed_core::CompiledPlanCache`]): a plan seen before on this
//! snapshot skips label resolution entirely, so a plan-cache hit pays
//! neither the parse nor the compile on the hot path.
//!
//! Feedback also batches: a [`FeedbackItem`] slice routed through
//! [`crate::Catalog::record_feedback_batch`] (or
//! [`crate::Service::feedback_batch`]) applies every observation under
//! one entry update — one epoch bump and one snapshot publication for
//! the whole batch, with the maintenance policy evaluated once over the
//! batch's accumulated error mass.

use crate::metrics::{Obs, Stage};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xpathkit::QueryPlan;
use xseed_core::{BoundedEstimate, SynopsisSnapshot};

/// One observed cardinality in a feedback batch: the executed query (a
/// cached plan, so repeated feedback skips the parser) plus what the
/// execution engine actually saw. `base` is the cardinality of the same
/// path without predicates, when known — it lets branching feedback
/// derive an exact correlated selectivity (see
/// [`xseed_core::het::feedback::record_feedback`]).
#[derive(Debug, Clone)]
pub struct FeedbackItem {
    /// The executed query.
    pub query: Arc<QueryPlan>,
    /// The observed cardinality.
    pub actual: u64,
    /// Cardinality of the predicate-free base path, if known.
    pub base: Option<u64>,
}

/// Estimates every plan of `batch` over one snapshot pass, returning the
/// estimates in input order. Matcher selection (memoized replay vs cold
/// pass) is the snapshot's policy — [`SynopsisSnapshot::matcher_for_batch`]
/// — decided by `policy_len`: the length of the whole *logical* batch,
/// which exceeds `batch.len()` when a service batch was chunked across
/// workers. Deciding on the logical length keeps every chunk of one
/// batch on the same matcher kind, so the memo build cost is paid (or
/// skipped) coherently for the whole logical batch; the memoized and
/// cold frontiers themselves are always identical.
pub fn execute_batch(
    snapshot: &SynopsisSnapshot,
    batch: &[Arc<QueryPlan>],
    policy_len: usize,
) -> Vec<f64> {
    execute_batch_observed(snapshot, batch, policy_len, &None)
}

/// [`execute_batch`] with per-stage observability: when `obs` is present,
/// each plan's compilation (compiled-cache misses only, captured inside
/// the miss closure by
/// [`xseed_core::StreamingMatcher::estimate_plan_timed`] so the cache
/// counters see exactly one lookup per estimate) is timed into
/// [`Stage::Compile`], and one `Instant` pair around the whole chunk
/// records `batch.len()` [`Stage::Estimate`] samples of the per-query
/// mean with the total compile time subtracted out, so the two stages
/// partition the work and the warm per-query hot path pays no clock
/// reads at all (see [`Obs::record_amortized`]). With `obs` absent this
/// is exactly [`execute_batch`].
pub fn execute_batch_observed(
    snapshot: &SynopsisSnapshot,
    batch: &[Arc<QueryPlan>],
    policy_len: usize,
    obs: &Option<Arc<Obs>>,
) -> Vec<f64> {
    let mut matcher = snapshot.matcher_for_batch(policy_len.max(batch.len()));
    let Some(obs) = obs else {
        return batch
            .iter()
            .map(|plan| matcher.estimate_plan(plan))
            .collect();
    };
    let started = Instant::now();
    let mut compile_total = Duration::ZERO;
    let estimates: Vec<f64> = batch
        .iter()
        .map(|plan| {
            let (estimate, compiled) = matcher.estimate_plan_timed(plan);
            if let Some(compile_time) = compiled {
                obs.record(Stage::Compile, compile_time);
                compile_total += compile_time;
            }
            estimate
        })
        .collect();
    let estimating = started.elapsed().saturating_sub(compile_total);
    obs.record_amortized(Stage::Estimate, estimating, batch.len() as u64);
    estimates
}

/// Estimates every plan of `batch` in **bound mode** over one snapshot
/// pass: each result pairs the point estimate with a guaranteed upper
/// bound on the true cardinality
/// ([`xseed_core::StreamingMatcher::estimate_plan_bound`]). Matcher
/// selection follows the same `policy_len` rule as [`execute_batch`]; the
/// compiled form is shared with the point path through the snapshot's
/// compiled-query cache.
pub fn execute_batch_bound(
    snapshot: &SynopsisSnapshot,
    batch: &[Arc<QueryPlan>],
    policy_len: usize,
) -> Vec<BoundedEstimate> {
    let mut matcher = snapshot.matcher_for_batch(policy_len.max(batch.len()));
    batch
        .iter()
        .map(|plan| matcher.estimate_plan_bound(plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseed_core::{XseedConfig, XseedSynopsis};

    #[test]
    fn batch_matches_one_shot_estimates() {
        let synopsis =
            XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
                .unwrap();
        let snapshot = synopsis.snapshot();
        let plans: Vec<Arc<QueryPlan>> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*", "/a/zzz"]
            .iter()
            .map(|q| Arc::new(QueryPlan::parse(q).unwrap()))
            .collect();
        let batch = execute_batch(&snapshot, &plans, plans.len());
        for (plan, got) in plans.iter().zip(&batch) {
            let expected = synopsis.estimate(plan.expr());
            assert!((expected - got).abs() < 1e-9, "{}", plan.text());
        }
        // Single-plan batches work too.
        let single = execute_batch(&snapshot, &plans[..1], 1);
        assert!((single[0] - batch[0]).abs() < 1e-12);
    }

    #[test]
    fn batch_bound_dominates_point_estimates() {
        let synopsis =
            XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
                .unwrap();
        let snapshot = synopsis.snapshot();
        let plans: Vec<Arc<QueryPlan>> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*", "/a/zzz"]
            .iter()
            .map(|q| Arc::new(QueryPlan::parse(q).unwrap()))
            .collect();
        let points = execute_batch(&snapshot, &plans, plans.len());
        let bounded = execute_batch_bound(&snapshot, &plans, plans.len());
        for ((plan, point), be) in plans.iter().zip(&points).zip(&bounded) {
            assert!((be.estimate - point).abs() < 1e-9, "{}", plan.text());
            assert!(be.bound >= be.estimate, "{}", plan.text());
        }
        // Bound of an absent label is exactly zero.
        assert_eq!(bounded[4].bound, 0.0);
    }
}
