//! Snapshot files on disk: crash-safe writes and warm-start scanning.
//!
//! The byte format itself lives in [`xseed_core::persist`]; this module
//! owns the filesystem discipline around it:
//!
//! * [`write_snapshot_file`] — durable, crash-safe persistence: the bytes
//!   go to a `.tmp` sibling first, are fsynced, and only then atomically
//!   renamed over the destination, so a crash at any point leaves either
//!   the old snapshot or the new one — never a torn file;
//! * [`warm_start`] — boot-time recovery: scan a directory of `*.xsnap`
//!   files, register every snapshot that decodes, and **quarantine**
//!   (rename to `<file>.corrupt`, log, count) every one that doesn't.
//!   Graceful degradation by construction: a corrupt snapshot can cost at
//!   most itself, never the boot.

use crate::catalog::Catalog;
use std::fs;
use std::io;
use std::path::Path;

/// File extension of snapshot files the warm start scans.
pub const SNAPSHOT_EXTENSION: &str = "xsnap";

/// Writes `bytes` to `path` crash-safely: parent directories are created,
/// the data lands in a `.tmp` sibling, is fsynced, and is then atomically
/// renamed into place (with a best-effort fsync of the parent directory,
/// so the rename itself is durable on filesystems that need it).
pub fn write_snapshot_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Persist the rename in the directory itself; failure here (e.g.
        // a filesystem that refuses directory fsync) does not undo the
        // successful write.
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// What a [`warm_start`] scan found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmStart {
    /// Names (file stems) registered from snapshots that decoded.
    pub loaded: Vec<String>,
    /// File names renamed to `.corrupt` because they failed to decode.
    pub quarantined: Vec<String>,
}

/// Scans `dir` for `*.xsnap` files (creating the directory if missing) and
/// registers each one in `catalog` under its file stem. Files that fail to
/// read or decode are renamed to `<file>.corrupt` — out of the scan
/// pattern, preserved for inspection — logged to stderr, and counted;
/// they never abort the scan. Files are visited in name order, so the
/// surviving catalog is deterministic.
pub fn warm_start(catalog: &Catalog, dir: &Path) -> io::Result<WarmStart> {
    fs::create_dir_all(dir)?;
    let mut paths: Vec<std::path::PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.extension()
                .is_some_and(|ext| ext == SNAPSHOT_EXTENSION)
        })
        .collect();
    paths.sort();
    let mut result = WarmStart::default();
    for path in paths {
        let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
            continue;
        };
        match catalog.load_snapshot(&name, &path, None) {
            Ok(_) => result.loaded.push(name),
            Err(e) => {
                let file_name = path
                    .file_name()
                    .map(|f| f.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                let mut corrupt = path.as_os_str().to_os_string();
                corrupt.push(".corrupt");
                match fs::rename(&path, &corrupt) {
                    Ok(()) => eprintln!(
                        "xseed-serve: quarantined snapshot {file_name}: {e} \
                         (renamed to {file_name}.corrupt)"
                    ),
                    Err(rename_err) => eprintln!(
                        "xseed-serve: quarantined snapshot {file_name}: {e} \
                         (rename failed: {rename_err})"
                    ),
                }
                result.quarantined.push(file_name);
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xseed_core::{XseedConfig, XseedSynopsis};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xseed-persist-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_catalog_with(name: &str) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());
        let doc = xmlkit::samples::figure2_document();
        catalog.insert(name, XseedSynopsis::build(&doc, XseedConfig::default()));
        catalog
    }

    #[test]
    fn write_is_atomic_and_leaves_no_tmp() {
        let dir = temp_dir("write");
        let path = dir.join("nested/snap.xsnap");
        write_snapshot_file(&path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert!(!path.with_extension("xsnap.tmp").exists());
        write_snapshot_file(&path, b"replaced").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"replaced");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_loads_healthy_and_quarantines_corrupt() {
        let dir = temp_dir("warm");
        let source = sample_catalog_with("fig2");
        source
            .save_snapshot("fig2", &dir.join("fig2.xsnap"))
            .unwrap();
        fs::write(dir.join("bogus.xsnap"), b"XSEEDSNP not really").unwrap();
        fs::write(dir.join("ignored.txt"), b"not a snapshot").unwrap();

        let catalog = Catalog::new();
        let result = warm_start(&catalog, &dir).unwrap();
        assert_eq!(result.loaded, vec!["fig2".to_string()]);
        assert_eq!(result.quarantined, vec!["bogus.xsnap".to_string()]);
        assert!(catalog.snapshot("fig2").is_some());
        assert!(!dir.join("bogus.xsnap").exists());
        assert!(dir.join("bogus.xsnap.corrupt").exists());
        // A second scan sees only the healthy file: quarantine renamed the
        // corrupt one out of the pattern.
        let again = warm_start(&Catalog::new(), &dir).unwrap();
        assert_eq!(again.quarantined, Vec::<String>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_creates_missing_directory() {
        let dir = temp_dir("fresh");
        let catalog = Catalog::new();
        let result = warm_start(&catalog, &dir).unwrap();
        assert_eq!(result, WarmStart::default());
        assert!(dir.is_dir());
        let _ = fs::remove_dir_all(&dir);
    }
}
