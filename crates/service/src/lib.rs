//! # xseed-service — concurrent multi-synopsis estimation over shared snapshots
//!
//! The XSEED paper pitches estimation fast enough to sit inside a query
//! optimizer's hot loop; this crate is the serving layer that turns the
//! single-threaded `FrozenKernel` + `StreamingMatcher` pipeline into a
//! multi-document, multi-threaded estimation *service* — the daemon shape
//! that DBMS cardinality-estimation benchmarks (and summary-as-a-service
//! estimators) measure:
//!
//! * [`catalog`] — a [`Catalog`] of named synopses (XMark, DBLP, Treebank,
//!   user-loaded documents) that publishes epoch-versioned
//!   [`xseed_core::SynopsisSnapshot`]s. Readers clone an `Arc` and never
//!   lock again; writers mutate the synopsis and publish a fresh snapshot,
//!   so in-flight estimates keep answering from their own consistent
//!   pre-update state.
//! * [`plan_cache`] — a sharded LRU [`PlanCache`] from query text to
//!   parsed-and-classified [`xpathkit::QueryPlan`]s, so repeated queries
//!   skip the parser across all worker threads without a global lock.
//! * [`batch`] — the batch executor: one snapshot pass per batch via the
//!   snapshot's shared frontier memo (the traveler's expansion recorded
//!   once per epoch, replayed per query).
//! * [`service`] — the [`Service`] front end: a worker thread pool with
//!   per-worker sharded request queues and work stealing, dispatching
//!   single estimates and batches over catalog snapshots.
//! * [`protocol`] — the line protocol (`LOAD` / `EST` / `BATCH` / `STATS`)
//!   spoken by the `xseed-serve` binary over stdin or TCP.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use xseed_service::{Catalog, Service, ServiceConfig};
//! use xseed_core::{XseedConfig, XseedSynopsis};
//!
//! let catalog = Arc::new(Catalog::new());
//! let doc = xmlkit::Document::parse_str(
//!     "<lib><book><title/><author/></book><book><title/></book></lib>",
//! ).unwrap();
//! catalog.insert("lib", XseedSynopsis::build(&doc, XseedConfig::default()));
//!
//! let service = Service::new(catalog, ServiceConfig::with_workers(2));
//! let est = service.estimate("lib", "/lib/book/title").unwrap();
//! assert!((est - 2.0).abs() < 1e-9);
//! let batch = service
//!     .estimate_batch("lib", &["/lib/book", "/lib/book[author]/title"])
//!     .unwrap();
//! assert_eq!(batch.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod plan_cache;
pub mod protocol;
pub mod service;

pub use batch::execute_batch;
pub use catalog::{Catalog, DocumentInfo};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use protocol::{handle_line, run_script, ProtocolOptions, Response};
pub use service::{PendingEstimate, Service, ServiceConfig, ServiceError, ServiceStats};
