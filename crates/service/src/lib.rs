//! # xseed-service — concurrent multi-synopsis estimation over shared snapshots
//!
//! The XSEED paper pitches estimation fast enough to sit inside a query
//! optimizer's hot loop; this crate is the serving layer that turns the
//! single-threaded `FrozenKernel` + `StreamingMatcher` pipeline into a
//! multi-document, multi-threaded estimation *service* — the daemon shape
//! that DBMS cardinality-estimation benchmarks (and summary-as-a-service
//! estimators) measure:
//!
//! * [`catalog`] — a [`Catalog`] of named synopses (XMark, DBLP, Treebank,
//!   user-loaded documents) that publishes epoch-versioned
//!   [`xseed_core::SynopsisSnapshot`]s. Readers clone an `Arc` and never
//!   lock again; writers mutate the synopsis and publish a fresh snapshot,
//!   so in-flight estimates keep answering from their own consistent
//!   pre-update state.
//! * [`plan_cache`] — a sharded LRU [`PlanCache`] from query text to
//!   parsed-and-classified [`xpathkit::QueryPlan`]s, so repeated queries
//!   skip the parser across all worker threads without a global lock.
//! * [`batch`] — the batch executor: one snapshot pass per batch via the
//!   snapshot's shared frontier memo (the traveler's expansion recorded
//!   once per epoch, replayed per query).
//! * [`service`] — the [`Service`] front end: a worker thread pool with
//!   per-worker **bounded** request queues, admission control that sheds
//!   excess load with [`ServiceError::Overloaded`], and work stealing,
//!   dispatching single estimates and batches over catalog snapshots.
//! * [`protocol`] — the line protocol (`LOAD` / `EST` / `BATCH` / `STATS`)
//!   spoken by the `xseed-serve` binary, including the structured
//!   `OVERLOADED` shed reply (full reference: `docs/PROTOCOL.md`).
//! * [`server`] — the session front ends: stdin streams and the
//!   nonblocking TCP event loop (a hand-rolled epoll poller from the
//!   `netpoll` crate multiplexing every connection on one thread, with
//!   pipelining, slow-consumer backpressure, a connection limit, an
//!   idle-session timeout, and the per-client [`limiter`]).
//! * [`limiter`] — per-connection token-bucket rate limiting (the
//!   `OVERLOADED rate=…` fairness reply; off by default).
//! * [`persist`] — crash-safe snapshot files (`SAVE` / `LOAD … file:`)
//!   and the `--snapshot-dir` warm start that restores a catalog at boot,
//!   quarantining corrupt files instead of refusing to serve.
//! * [`metrics`] / [`trace`] — the observability layer: hand-rolled
//!   lock-free log-bucketed latency histograms over every pipeline stage
//!   (parse → plan lookup → compile → estimate → rebuild → persistence),
//!   online q-error tracking from `FEEDBACK` observations, and a
//!   fixed-size event trace ring — surfaced by `STATS`, the
//!   Prometheus-style `METRICS` verb, and `TRACE [n]`.
//!
//! ## Architecture
//!
//! The end-to-end tour of the whole system (parse → caches → streaming
//! estimate → HET → catalog epochs → workers/admission → event loop →
//! persistence → observability), with the per-crate map, lives in
//! `docs/ARCHITECTURE.md`; what follows is the serving-layer slice.
//!
//! A request travels left to right; every stage is bounded, and each box
//! on the estimate path is lock-free or sharded:
//!
//! ```text
//!  clients                    admission                workers (N threads)
//! ┌──────────┐  conn limit   ┌──────────────┐  shed?  ┌────────────────────┐
//! │ stdin /  │──────────────▶│ resolve:     │───────▶ │ q0 ▸▸▸ ─┐ steal    │
//! │ TCP      │  idle timeout │  snapshot    │  OVER-  │ q1 ▸    ─┼─▶ exec  │
//! │ sessions │               │  (Arc clone) │  LOADED │ …        │  batch  │
//! └──────────┘               │  plan cache  │         │ qN-1 ▸▸ ─┘         │
//!                            │  queue budget│         └─────────┬──────────┘
//!                            └──────┬───────┘                   │
//!                                   │ resolve at submit         │ estimate
//!                            ┌──────▼───────────────────────────▼──────────┐
//!                            │ Catalog: name → epoch-versioned snapshot    │
//!                            │  SynopsisSnapshot = frozen CSR kernel + HET │
//!                            │   + config + shared FrontierMemo            │
//!                            │   + per-snapshot CompiledPlanCache          │
//!                            └─────────────────────────────────────────────┘
//! ```
//!
//! Requests are resolved *at submit time* (snapshot `Arc` clone +
//! sharded-LRU plan-cache lookup), so queued jobs are self-contained and
//! workers never touch the catalog; a `LOAD`/update publishes a fresh
//! epoch while in-flight jobs finish on the epoch they started with. The
//! queue budget is reserved before anything is enqueued — excess load
//! degrades into an immediate structured `OVERLOADED` reply rather than
//! an unbounded queue. On the hot path, a plan-cache hit also hits the
//! snapshot's compiled-query cache, skipping label resolution; epoch
//! bumps invalidate it for free because a new snapshot starts with a new
//! cache.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use xseed_service::{Catalog, Service, ServiceConfig};
//! use xseed_core::{XseedConfig, XseedSynopsis};
//!
//! let catalog = Arc::new(Catalog::new());
//! let doc = xmlkit::Document::parse_str(
//!     "<lib><book><title/><author/></book><book><title/></book></lib>",
//! ).unwrap();
//! catalog.insert("lib", XseedSynopsis::build(&doc, XseedConfig::default()));
//!
//! let service = Service::new(catalog, ServiceConfig::with_workers(2));
//! let est = service.estimate("lib", "/lib/book/title").unwrap();
//! assert!((est - 2.0).abs() < 1e-9);
//! let batch = service
//!     .estimate_batch("lib", &["/lib/book", "/lib/book[author]/title"])
//!     .unwrap();
//! assert_eq!(batch.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod limiter;
pub mod metrics;
pub mod persist;
pub mod plan_cache;
pub mod protocol;
pub mod server;
pub mod service;
pub mod trace;

pub use batch::{execute_batch, execute_batch_observed, FeedbackItem};
pub use catalog::{
    Catalog, CatalogFeedback, CatalogFeedbackBatch, DocumentInfo, MaintenancePolicy, RebuildError,
    RetentionPolicy, SnapshotError,
};
pub use limiter::{RateLimiter, TokenBucket};
pub use metrics::{format_milli_q, q_error_milli, Histogram, HistogramSnapshot, Obs, Stage};
pub use persist::{warm_start, write_snapshot_file, WarmStart, SNAPSHOT_EXTENSION};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use protocol::{handle_line, run_script, ProtocolOptions, Response};
pub use server::{serve_stream, ServerConfig, TcpServer};
pub use service::{
    PendingEstimate, RebuildTicket, Service, ServiceConfig, ServiceError, ServiceFeedback,
    ServiceFeedbackBatch, ServiceStats, WorkerPause,
};
pub use trace::{TraceEvent, TraceKind, TraceRing};
