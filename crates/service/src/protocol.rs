//! The line protocol spoken by `xseed-serve`.
//!
//! One request per line, one `OK …` / `ERR …` / `OVERLOADED …` response
//! line per request — trivially drivable from a shell pipe, `nc`, or an
//! optimizer sidecar:
//!
//! ```text
//! LOAD <name> <spec> [recursive] [retain]   register a document
//! SAVE <name> <path>                        persist a snapshot to disk
//! EST <name> <query>                        estimate one query
//! BATCH <name> <q1> ; <q2> ; …              estimate a batch (one snapshot pass)
//! FEEDBACK <name> <actual> [base=<n>] <q>   feed back an observed cardinality
//! MAINTAIN <name> <policy>                  set the maintenance policy
//! STATS [json]                              service + catalog counters
//! METRICS                                   Prometheus-style text exposition
//! TRACE [n]                                 replay the last n service events
//! HELP                                      command summary
//! QUIT                                      close the session
//! ```
//!
//! `STATS` emits `key=value` pairs; `STATS json` emits the same counters
//! as one JSON object (`docs` becomes an array of per-document objects),
//! so monitoring scrapers don't have to parse the flat form. With
//! observability on (the default), `STATS` also reports the global
//! q-error percentiles of served estimates, `METRICS` exposes every
//! per-stage latency histogram (p50/p90/p99/max) plus global and
//! per-document q-error in Prometheus text format, and `TRACE [n]`
//! replays the last `n` recorded state changes (loads, saves, rebuilds,
//! quarantines, shed transitions, pauses) from the event trace ring.
//!
//! `<spec>` is either a filesystem path to an XML document,
//! `file:<path>` to restore a snapshot written by `SAVE`, or
//! `builtin:<dataset>[@scale]` for the synthetic evaluation datasets
//! (`xmark`, `dblp`, `treebank`, `swissprot`, `tpch`, `xbench`), e.g.
//! `builtin:xmark@0.1`, or one of the paper's fixed sample documents
//! (`builtin:figure2`, `builtin:figure4` — no `@scale`). The optional
//! `recursive` flag (implied for the builtin Treebank) selects the
//! paper's highly-recursive configuration; `retain` keeps the source
//! document in the catalog so `FEEDBACK`-driven maintenance can rebuild
//! the HET without an operator (see `docs/OPERATIONS.md`).
//!
//! `FEEDBACK` routes an executed query's observed cardinality back into
//! the synopsis (the paper's Figure 1 feedback arrow): the reply carries
//! the recorded outcome (`simple` / `correlated` / `unsupported`), the
//! estimate the synopsis held, the exposed error, and — when the
//! document's `MAINTAIN` policy declared the drift due — the result of
//! the automatic HET rebuild the maintenance thread ran
//! (`rebuild=done`). `MAINTAIN` sets that policy: `manual` (default),
//! `error-mass=<x>` (rebuild once accumulated `|estimated − actual|`
//! reaches `x`), or `every=<n>` (rebuild every `n` applied feedbacks).
//!
//! `EST`/`BATCH` requests that admission control sheds (queue budget
//! exhausted — see [`crate::service`]) get a structured
//! `OVERLOADED queued=<n> capacity=<n>` reply instead of `ERR`: the
//! request was well-formed and retryable, the server just refused to
//! queue it. The complete grammar, every reply form, and the security
//! notes live in `docs/PROTOCOL.md`.

use crate::catalog::{MaintenancePolicy, SnapshotError};
use crate::metrics::{format_milli_q, HistogramSnapshot, Stage};
use crate::service::{Service, ServiceError};
use crate::trace::TraceKind;
use datagen::Dataset;
use std::fmt::Write as _;
use std::sync::Arc;
use xmlkit::tree::Document;
use xseed_core::{XseedConfig, XseedSynopsis};

/// Outcome of one protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to send back to the client.
    Line(String),
    /// Nothing to send (blank line or `#` comment).
    Silent,
    /// The client asked to close the session.
    Quit,
}

impl Response {
    fn ok(body: impl Into<String>) -> Response {
        Response::Line(format!("OK {}", body.into()))
    }

    fn err(body: impl std::fmt::Display) -> Response {
        Response::Line(format!("ERR {body}"))
    }

    /// The reply for a [`ServiceError`]: sheds become the structured
    /// `OVERLOADED` form (retryable, not a client mistake), everything
    /// else is an `ERR`.
    fn service_err(err: ServiceError) -> Response {
        match err {
            ServiceError::Overloaded { queued, capacity } => {
                Response::Line(format!("OVERLOADED queued={queued} capacity={capacity}"))
            }
            other => Response::err(other),
        }
    }

    /// The reply text, if any.
    pub fn text(&self) -> Option<&str> {
        match self {
            Response::Line(s) => Some(s),
            Response::Silent | Response::Quit => None,
        }
    }
}

const HELP: &str = "commands: LOAD <name> <path|builtin:dataset[@scale]|file:snapshot.xsnap> \
                    [recursive] [retain] [partitions=<n>] | SAVE <name> <path> | \
                    EST <name> [mode=bound] <query> | BATCH <name> <q1> ; <q2> ; ... | \
                    FEEDBACK <name> <actual> [base=<n>] <query> | \
                    MAINTAIN <name> <manual|error-mass=<x>|every=<n>> | STATS [json] | \
                    METRICS | TRACE [n] | HELP | QUIT";

/// Per-session protocol policy.
#[derive(Debug, Clone)]
pub struct ProtocolOptions {
    /// Permit `LOAD <name> <path>` reads from the server's filesystem.
    /// Local (stdin) sessions allow this; network sessions must opt in
    /// explicitly (`--allow-fs-load`), since it lets any connected client
    /// read server-side files into a synopsis.
    pub allow_fs_load: bool,
    /// Upper bound accepted for `builtin:<dataset>@<scale>`, bounding the
    /// memory a single LOAD can make the generator allocate.
    pub max_builtin_scale: f64,
    /// Maximum number of catalog documents `LOAD` may create in this
    /// session's catalog (`None` = unlimited). Re-LOADing an existing
    /// name never counts against it. Bounds total server memory a
    /// network client can pin by looping `LOAD` with fresh names.
    pub max_documents: Option<usize>,
    /// When set, every `LOAD` in this session retains its document and
    /// arms this maintenance policy — the daemon's
    /// `--maintain-error-mass` flag turns a whole deployment
    /// self-maintaining without per-document `MAINTAIN` calls. `None`
    /// (the default) loads with [`MaintenancePolicy::Manual`] and retains
    /// only on the explicit `retain` flag.
    pub auto_maintenance: Option<MaintenancePolicy>,
    /// Default worker count for partitioned synopsis construction
    /// (`--build-partitions`). A per-LOAD `partitions=<n>` flag overrides
    /// it; `None` (or 1) builds monolithically. Partitioned builds are
    /// bit-identical to monolithic ones, so this only changes build
    /// latency, never estimates.
    pub build_partitions: Option<usize>,
}

impl ProtocolOptions {
    /// Policy for a trusted local session (filesystem loads allowed).
    pub fn local() -> Self {
        ProtocolOptions {
            allow_fs_load: true,
            max_builtin_scale: 4.0,
            max_documents: None,
            auto_maintenance: None,
            build_partitions: None,
        }
    }

    /// Policy for a network session: no filesystem loads, capped builtin
    /// scales.
    pub fn remote() -> Self {
        ProtocolOptions {
            allow_fs_load: false,
            max_builtin_scale: 4.0,
            max_documents: Some(64),
            auto_maintenance: None,
            build_partitions: None,
        }
    }
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions::local()
    }
}

/// Handles one protocol line against `service` under `options`. Empty
/// lines and `#` comments get no reply.
pub fn handle_line(service: &Service, line: &str, options: &ProtocolOptions) -> Response {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Response::Silent;
    }
    let (command, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match command.to_ascii_uppercase().as_str() {
        "LOAD" => handle_load(service, rest, options),
        "SAVE" => handle_save(service, rest, options),
        "EST" => handle_est(service, rest),
        "BATCH" => handle_batch(service, rest),
        "FEEDBACK" => handle_feedback(service, rest),
        "MAINTAIN" => handle_maintain(service, rest),
        "STATS" => handle_stats(service, rest),
        "METRICS" => handle_metrics(service, rest),
        "TRACE" => handle_trace(service, rest),
        "HELP" => Response::ok(HELP),
        "QUIT" | "EXIT" => Response::Quit,
        other => Response::err(format_args!("unknown command '{other}' ({HELP})")),
    }
}

fn handle_load(service: &Service, args: &str, options: &ProtocolOptions) -> Response {
    let mut parts = args.split_whitespace();
    let (Some(name), Some(spec)) = (parts.next(), parts.next()) else {
        return Response::err("LOAD needs: LOAD <name> <path|builtin:dataset[@scale]>");
    };
    let mut recursive = false;
    // An auto-maintenance session retains every load so its policy can
    // actually fire; otherwise retention is per-LOAD opt-in.
    let mut retain = options.auto_maintenance.is_some();
    let mut explicit_partitions: Option<usize> = None;
    for flag in parts {
        match flag.to_ascii_lowercase().as_str() {
            "recursive" => recursive = true,
            "retain" => retain = true,
            other => match other.strip_prefix("partitions=") {
                Some(n) => match n.parse::<usize>() {
                    Ok(n) if n >= 1 => explicit_partitions = Some(n),
                    _ => {
                        return Response::err(format_args!(
                            "bad partitions value '{n}' (want an integer >= 1)"
                        ))
                    }
                },
                None => return Response::err(format_args!("unknown LOAD flag '{other}'")),
            },
        }
    }
    // The session default applies wherever a synopsis is actually built;
    // an explicit flag wins. Bit-compatibility of the partitioned builder
    // means this choice is invisible in every estimate.
    let partitions = explicit_partitions
        .or(options.build_partitions)
        .unwrap_or(1)
        .max(1);
    // Fast-path rejection before generating/parsing anything; the
    // authoritative (atomic) check happens inside `insert_full` below.
    if let Some(max) = options.max_documents {
        let catalog = service.catalog();
        if catalog.snapshot(name).is_none() && catalog.len() >= max {
            return Response::err(format_args!(
                "catalog document limit reached ({max}); re-LOAD an existing name instead"
            ));
        }
    }

    // `file:` specs restore a saved snapshot instead of building from XML;
    // the snapshot carries its own config, epoch, and (optionally) the
    // retained document, so the recursive/retain flags don't apply.
    if let Some(path) = spec.strip_prefix("file:") {
        if explicit_partitions.is_some() {
            return Response::err(
                "partitions= does not apply to file: snapshots (they restore a \
                 previously built synopsis, nothing is rebuilt)",
            );
        }
        if !options.allow_fs_load {
            return Response::err(
                "filesystem LOAD is disabled for this session (use builtin:… \
                 or start the server with --allow-fs-load)",
            );
        }
        return match service.load_snapshot(name, std::path::Path::new(path), options.max_documents)
        {
            Ok((snapshot, restored)) => {
                let mut body = format!(
                    "loaded name={name} epoch={} vertices={} elements={}",
                    snapshot.epoch(),
                    snapshot.frozen().vertex_count(),
                    snapshot.frozen().element_count(),
                );
                if restored {
                    body.push_str(" retained=yes");
                }
                Response::ok(body)
            }
            Err(SnapshotError::CatalogFull) => {
                let max = options.max_documents.unwrap_or(0);
                Response::err(format_args!(
                    "catalog document limit reached ({max}); re-LOAD an existing name instead"
                ))
            }
            Err(e) => Response::err(format_args!("cannot load snapshot '{path}': {e}")),
        };
    }

    let build = |doc: &Document, config: XseedConfig| {
        if partitions > 1 {
            XseedSynopsis::build_partitioned(doc, config, partitions)
        } else {
            XseedSynopsis::build(doc, config)
        }
    };
    let (synopsis, document) = if let Some(builtin) = spec.strip_prefix("builtin:") {
        match build_builtin(builtin, recursive, options) {
            Ok((doc, config)) => {
                let synopsis = build(&doc, config);
                (synopsis, retain.then(|| Arc::new(doc)))
            }
            Err(e) => return Response::err(e),
        }
    } else {
        if !options.allow_fs_load {
            return Response::err(
                "filesystem LOAD is disabled for this session (use builtin:… \
                 or start the server with --allow-fs-load)",
            );
        }
        let xml = match std::fs::read_to_string(spec) {
            Ok(xml) => xml,
            Err(e) => return Response::err(format_args!("cannot read '{spec}': {e}")),
        };
        let config = if recursive {
            XseedConfig::recursive_document()
        } else {
            XseedConfig::default()
        };
        if retain || partitions > 1 {
            // Retention — and partitioned construction, which needs random
            // access to root-child subtrees — require the materialized
            // document, so parse into a tree instead of the SAX-only path.
            match Document::parse_str(&xml) {
                Ok(doc) => {
                    let synopsis = build(&doc, config);
                    (synopsis, retain.then(|| Arc::new(doc)))
                }
                Err(e) => return Response::err(format_args!("cannot parse '{spec}': {e}")),
            }
        } else {
            match XseedSynopsis::build_from_xml(&xml, config) {
                Ok(s) => (s, None),
                Err(e) => return Response::err(format_args!("cannot parse '{spec}': {e}")),
            }
        }
    };

    let retained = document.is_some();
    let policy = options
        .auto_maintenance
        .unwrap_or(MaintenancePolicy::Manual);
    let snapshot =
        match service
            .catalog()
            .insert_full(name, synopsis, options.max_documents, document, policy)
        {
            Some(snapshot) => snapshot,
            None => {
                let max = options.max_documents.unwrap_or(0);
                return Response::err(format_args!(
                    "catalog document limit reached ({max}); re-LOAD an existing name instead"
                ));
            }
        };
    if let Some(obs) = service.obs() {
        obs.trace().record(TraceKind::Load, name);
    }
    let mut body = format!(
        "loaded name={name} epoch={} vertices={} elements={}",
        snapshot.epoch(),
        snapshot.frozen().vertex_count(),
        snapshot.frozen().element_count(),
    );
    if retained {
        body.push_str(" retained=yes");
    }
    // Monolithic loads keep the historical reply shape so committed
    // transcripts stay stable; parallel builds advertise the worker count.
    if partitions > 1 {
        body.push_str(&format!(" partitions={partitions}"));
    }
    Response::ok(body)
}

fn build_builtin(
    spec: &str,
    recursive: bool,
    options: &ProtocolOptions,
) -> Result<(Document, XseedConfig), String> {
    let (name, scale) = match spec.split_once('@') {
        Some((n, s)) => {
            let scale: f64 = s
                .parse()
                .map_err(|_| format!("bad builtin scale '{s}' (want e.g. 0.1)"))?;
            (n, Some(scale))
        }
        None => (spec, None),
    };
    // The paper's fixed sample documents: tiny, deterministic, and with
    // known kernel misestimates — ideal for feedback/maintenance demos.
    let sample = match name.to_ascii_lowercase().as_str() {
        "figure2" => Some(xmlkit::samples::figure2_document()),
        "figure4" => Some(xmlkit::samples::figure4_document()),
        _ => None,
    };
    if let Some(doc) = sample {
        if scale.is_some() {
            return Err(format!("builtin sample '{name}' takes no @scale"));
        }
        let config = if recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        return Ok((doc, config));
    }
    let scale = scale.unwrap_or(0.1);
    if !scale.is_finite() || scale <= 0.0 || scale > options.max_builtin_scale {
        return Err(format!(
            "builtin scale {scale} out of range (0, {}]",
            options.max_builtin_scale
        ));
    }
    let dataset = match name.to_ascii_lowercase().as_str() {
        "xmark" => Dataset::XMark10,
        "dblp" => Dataset::Dblp,
        "treebank" => Dataset::TreebankSmall,
        "swissprot" => Dataset::SwissProt,
        "tpch" => Dataset::Tpch,
        "xbench" => Dataset::XBench,
        other => {
            return Err(format!(
                "unknown builtin '{other}' \
                 (xmark|dblp|treebank|swissprot|tpch|xbench|figure2|figure4)"
            ))
        }
    };
    let doc = dataset.generate_scaled(scale);
    let config = if recursive || dataset.is_highly_recursive() {
        XseedConfig::recursive_for_size(doc.element_count())
    } else {
        XseedConfig::default()
    };
    Ok((doc, config))
}

/// `SAVE <name> <path>`: persists the document's synopsis (and retained
/// document, if any) as a crash-safe snapshot file. Filesystem writes are
/// a bigger hazard than reads, so the verb sits behind the same
/// `allow_fs_load` gate as path-based `LOAD`.
fn handle_save(service: &Service, args: &str, options: &ProtocolOptions) -> Response {
    let mut parts = args.split_whitespace();
    let (Some(name), Some(path)) = (parts.next(), parts.next()) else {
        return Response::err("SAVE needs: SAVE <name> <path>");
    };
    if parts.next().is_some() {
        return Response::err("SAVE needs: SAVE <name> <path>");
    }
    if !options.allow_fs_load {
        return Response::err(
            "filesystem SAVE is disabled for this session \
             (start the server with --allow-fs-load)",
        );
    }
    match service.save_snapshot(name, std::path::Path::new(path)) {
        Ok(bytes) => Response::ok(format!("saved name={name} bytes={bytes}")),
        Err(SnapshotError::UnknownDocument(_)) => {
            Response::err(format_args!("unknown document '{name}'"))
        }
        Err(e) => Response::err(format_args!("cannot save '{path}': {e}")),
    }
}

fn handle_est(service: &Service, args: &str) -> Response {
    let Some((name, rest)) = args.split_once(char::is_whitespace) else {
        return Response::err("EST needs: EST <name> [mode=bound] <query>");
    };
    let rest = rest.trim();
    if let Some(moded) = rest.strip_prefix("mode=") {
        let Some((mode, query)) = moded.split_once(char::is_whitespace) else {
            return Response::err("EST needs: EST <name> [mode=bound] <query>");
        };
        if mode != "bound" {
            return Response::err(format_args!("unknown EST mode '{mode}' (supported: bound)"));
        }
        return match service.estimate_bound(name, query.trim()) {
            Ok(be) => Response::ok(format!(
                "est={} bound={}",
                format_est(be.estimate),
                format_est(be.bound)
            )),
            Err(e) => Response::service_err(e),
        };
    }
    match service.estimate(name, rest) {
        Ok(est) => Response::ok(format_est(est)),
        Err(e) => Response::service_err(e),
    }
}

fn handle_batch(service: &Service, args: &str) -> Response {
    let Some((name, rest)) = args.split_once(char::is_whitespace) else {
        return Response::err("BATCH needs: BATCH <name> <q1> ; <q2> ; ...");
    };
    let queries: Vec<&str> = rest
        .split(';')
        .map(str::trim)
        .filter(|q| !q.is_empty())
        .collect();
    if queries.is_empty() {
        return Response::err("BATCH needs at least one query");
    }
    match service.estimate_batch(name, &queries) {
        Ok(estimates) => {
            let mut body = format!("n={}", estimates.len());
            for est in estimates {
                let _ = write!(body, " {}", format_est(est));
            }
            Response::ok(body)
        }
        Err(e) => Response::service_err(e),
    }
}

/// `FEEDBACK <name> <actual> [base=<n>] <query>` — the Figure 1 feedback
/// arrow on the wire. When the feedback crosses the document's
/// maintenance policy the handler waits for the triggered rebuild, so
/// the reply (and any subsequent `EST`/`STATS` in the same session) is
/// deterministic: `rebuild=done` means the republished synopsis already
/// answers from the rebuilt HET.
fn handle_feedback(service: &Service, args: &str) -> Response {
    const USAGE: &str = "FEEDBACK needs: FEEDBACK <name> <actual> [base=<n>] <query>";
    let Some((name, rest)) = args.split_once(char::is_whitespace) else {
        return Response::err(USAGE);
    };
    let rest = rest.trim();
    let Some((actual_text, rest)) = rest.split_once(char::is_whitespace) else {
        return Response::err(USAGE);
    };
    let Ok(actual) = actual_text.parse::<u64>() else {
        return Response::err(format_args!(
            "bad FEEDBACK actual '{actual_text}' (want a non-negative integer)"
        ));
    };
    let mut query = rest.trim();
    let mut base = None;
    if let Some(base_rest) = query.strip_prefix("base=") {
        let Some((base_text, q)) = base_rest.split_once(char::is_whitespace) else {
            return Response::err(USAGE);
        };
        let Ok(parsed) = base_text.parse::<u64>() else {
            return Response::err(format_args!(
                "bad FEEDBACK base '{base_text}' (want a non-negative integer)"
            ));
        };
        base = Some(parsed);
        query = q.trim();
    }
    if query.is_empty() {
        return Response::err(USAGE);
    }
    match service.feedback(name, query, actual, base) {
        Ok(fb) => {
            let mut body = format!(
                "feedback outcome={} estimated={} actual={} error={}",
                fb.report.outcome,
                format_est(fb.report.estimated),
                fb.report.actual,
                format_est(fb.report.error),
            );
            match fb.rebuild {
                Some(ticket) => match ticket.wait() {
                    Ok((stats, epoch)) => {
                        let _ = write!(
                            body,
                            " rebuild=done entries={} epoch={epoch}",
                            stats.simple_entries + stats.correlated_entries
                        );
                    }
                    Err(e) => {
                        let _ = write!(body, " rebuild=failed ({e}) epoch={}", fb.epoch);
                    }
                },
                None => {
                    let _ = write!(body, " rebuild=none epoch={}", fb.epoch);
                }
            }
            Response::ok(body)
        }
        Err(e) => Response::service_err(e),
    }
}

/// `MAINTAIN <name> manual|error-mass=<x>|every=<n>` — arms (or disarms)
/// the document's automatic-rebuild policy.
fn handle_maintain(service: &Service, args: &str) -> Response {
    const USAGE: &str = "MAINTAIN needs: MAINTAIN <name> <manual|error-mass=<x>|every=<n>>";
    let Some((name, spec)) = args.split_once(char::is_whitespace) else {
        return Response::err(USAGE);
    };
    let spec = spec.trim();
    let policy = if spec.eq_ignore_ascii_case("manual") {
        MaintenancePolicy::Manual
    } else if let Some(bound_text) = spec.strip_prefix("error-mass=") {
        match bound_text.parse::<f64>() {
            Ok(bound) if bound.is_finite() && bound > 0.0 => {
                MaintenancePolicy::ErrorMassBound(bound)
            }
            _ => {
                return Response::err(format_args!(
                    "bad MAINTAIN error-mass bound '{bound_text}' (want a positive number)"
                ))
            }
        }
    } else if let Some(count_text) = spec.strip_prefix("every=") {
        match count_text.parse::<u64>() {
            Ok(count) if count > 0 => MaintenancePolicy::FeedbackCount(count),
            _ => {
                return Response::err(format_args!(
                    "bad MAINTAIN schedule '{count_text}' (want a positive integer)"
                ))
            }
        }
    } else {
        return Response::err(USAGE);
    };
    if !service.catalog().set_maintenance_policy(name, policy) {
        return Response::err(format_args!("unknown document '{name}'"));
    }
    let retained = service.catalog().retained_document(name).is_some();
    Response::ok(format!(
        "maintenance name={name} policy={} retained={}",
        policy_token(policy),
        if retained { "yes" } else { "no" },
    ))
}

/// The stable wire token for a maintenance policy.
fn policy_token(policy: MaintenancePolicy) -> String {
    match policy {
        MaintenancePolicy::Manual => "manual".to_string(),
        MaintenancePolicy::ErrorMassBound(bound) => format!("error-mass:{}", format_est(bound)),
        MaintenancePolicy::FeedbackCount(count) => format!("every:{count}"),
    }
}

fn handle_stats(service: &Service, args: &str) -> Response {
    match args.trim() {
        "" => handle_stats_flat(service),
        mode if mode.eq_ignore_ascii_case("json") => handle_stats_json(service),
        other => Response::err(format_args!(
            "unknown STATS mode '{other}' (use STATS or STATS json)"
        )),
    }
}

fn handle_stats_flat(service: &Service) -> Response {
    let stats = service.stats();
    let infos = service.catalog().info();
    let error_mass: f64 = infos.iter().map(|i| i.error_mass).sum();
    let mut body = format!(
        "workers={} uptime_secs={} executed={} batches={} steals={} accepted={} shed={} \
         queued={} peak_queued={} queue_capacity={} feedback_applied={} feedback_ignored={} \
         rebuilds_triggered={} error_mass={}",
        stats.workers,
        stats.uptime_secs,
        stats.total_executed(),
        stats.batches,
        stats.steals,
        stats.accepted,
        stats.shed,
        stats.queued,
        stats.peak_queued,
        stats.queue_capacity,
        stats.feedback_applied,
        stats.feedback_ignored,
        stats.rebuilds_triggered,
        format_est(error_mass),
    );
    // Served-accuracy percentiles (q-error, milli-resolution) — present
    // only when the observability layer is on.
    if let Some(obs) = service.obs() {
        let q = obs.q_error();
        let _ = write!(
            body,
            " qerr_count={} qerr_p50={} qerr_p90={} qerr_p99={}",
            q.count(),
            format_milli_q(q.percentile(0.5)),
            format_milli_q(q.percentile(0.9)),
            format_milli_q(q.percentile(0.99)),
        );
    }
    // Per-client rate-limiter sheds — present only when a network front
    // end armed the limiter (`--client-rate`), like the qerr keys above.
    if let Some(rate_limited) = stats.rate_limited {
        let _ = write!(body, " rate_limited={rate_limited}");
    }
    let _ = write!(
        body,
        " plan_hits={} plan_misses={} plan_entries={} persist_saves={} persist_loads={} \
         persist_load_failures={} quarantined={} docs={}",
        stats.plan_cache.hits,
        stats.plan_cache.misses,
        stats.plan_cache.entries,
        stats.persist_saves,
        stats.persist_loads,
        stats.persist_load_failures,
        stats.quarantined,
        infos.len(),
    );
    for info in &infos {
        let _ = write!(
            body,
            " doc:{}@{}[vertices={},elements={},bytes={},compiled_hits={},compiled_misses={},\
             error_mass={},rebuilds={}]",
            info.name,
            info.epoch,
            info.vertices,
            info.elements,
            info.size_bytes,
            info.compiled_hits,
            info.compiled_misses,
            format_est(info.error_mass),
            info.rebuilds,
        );
    }
    Response::Line(format!("OK {body}"))
}

/// `STATS json`: the same counters as the flat form, as one JSON object.
/// Serialized by hand (the workspace has no serde); every key mirrors its
/// `key=value` twin, and the per-document trailer becomes a `docs` array.
fn handle_stats_json(service: &Service) -> Response {
    let stats = service.stats();
    let infos = service.catalog().info();
    let error_mass: f64 = infos.iter().map(|i| i.error_mass).sum();
    let mut body = format!(
        "{{\"workers\":{},\"uptime_secs\":{},\"executed\":{},\"batches\":{},\"steals\":{},\
         \"accepted\":{},\"shed\":{},\"queued\":{},\"peak_queued\":{},\"queue_capacity\":{},\
         \"feedback_applied\":{},\"feedback_ignored\":{},\"rebuilds_triggered\":{},\
         \"error_mass\":{}",
        stats.workers,
        stats.uptime_secs,
        stats.total_executed(),
        stats.batches,
        stats.steals,
        stats.accepted,
        stats.shed,
        stats.queued,
        stats.peak_queued,
        stats.queue_capacity,
        stats.feedback_applied,
        stats.feedback_ignored,
        stats.rebuilds_triggered,
        format_est(error_mass),
    );
    if let Some(obs) = service.obs() {
        let q = obs.q_error();
        let _ = write!(
            body,
            ",\"qerr\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            q.count(),
            format_milli_q(q.percentile(0.5)),
            format_milli_q(q.percentile(0.9)),
            format_milli_q(q.percentile(0.99)),
        );
    }
    if let Some(rate_limited) = stats.rate_limited {
        let _ = write!(body, ",\"rate_limited\":{rate_limited}");
    }
    let _ = write!(
        body,
        ",\"plan_hits\":{},\"plan_misses\":{},\"plan_entries\":{},\"persist_saves\":{},\
         \"persist_loads\":{},\"persist_load_failures\":{},\"quarantined\":{},\"docs\":[",
        stats.plan_cache.hits,
        stats.plan_cache.misses,
        stats.plan_cache.entries,
        stats.persist_saves,
        stats.persist_loads,
        stats.persist_load_failures,
        stats.quarantined,
    );
    for (i, info) in infos.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"name\":\"{}\",\"epoch\":{},\"vertices\":{},\"elements\":{},\"bytes\":{},\
             \"compiled_hits\":{},\"compiled_misses\":{},\"error_mass\":{},\"rebuilds\":{}}}",
            json_escape(&info.name),
            info.epoch,
            info.vertices,
            info.elements,
            info.size_bytes,
            info.compiled_hits,
            info.compiled_misses,
            format_est(info.error_mass),
            info.rebuilds,
        );
    }
    body.push_str("]}");
    Response::Line(format!("OK {body}"))
}

/// `METRICS`: Prometheus-style text exposition of every observability
/// family — uptime, the service counters, per-stage latency histograms
/// (p50/p90/p99/max/count), and global + per-document q-error. The reply
/// is one `OK metrics lines=<n>` header followed by `n` exposition
/// lines, so line-oriented clients know exactly how much to read.
fn handle_metrics(service: &Service, args: &str) -> Response {
    if !args.trim().is_empty() {
        return Response::err("METRICS takes no arguments");
    }
    let Some(obs) = service.obs() else {
        return Response::err("observability is disabled (restart without --no-observability)");
    };
    let stats = service.stats();
    let infos = service.catalog().info();
    let mut body = String::new();
    let _ = writeln!(body, "# TYPE xseed_uptime_seconds gauge");
    let _ = writeln!(body, "xseed_uptime_seconds {}", stats.uptime_secs);
    for (name, value) in [
        ("workers", stats.workers as u64),
        ("documents", infos.len() as u64),
        ("queued", stats.queued as u64),
        ("peak_queued", stats.peak_queued as u64),
        ("queue_capacity", stats.queue_capacity as u64),
    ] {
        let _ = writeln!(body, "# TYPE xseed_{name} gauge");
        let _ = writeln!(body, "xseed_{name} {value}");
    }
    for (name, value) in [
        ("executed", stats.total_executed()),
        ("batches", stats.batches),
        ("steals", stats.steals),
        ("accepted", stats.accepted),
        ("shed", stats.shed),
        ("feedback_applied", stats.feedback_applied),
        ("feedback_ignored", stats.feedback_ignored),
        ("rebuilds", stats.rebuilds_triggered),
        ("plan_cache_hits", stats.plan_cache.hits),
        ("plan_cache_misses", stats.plan_cache.misses),
        ("persist_saves", stats.persist_saves),
        ("persist_loads", stats.persist_loads),
        ("persist_load_failures", stats.persist_load_failures),
        ("quarantined", stats.quarantined),
        ("trace_events", obs.trace().recorded()),
    ] {
        let _ = writeln!(body, "# TYPE xseed_{name}_total counter");
        let _ = writeln!(body, "xseed_{name}_total {value}");
    }
    // Armed-only family, mirroring the STATS key: absent entirely on
    // daemons without --client-rate.
    if let Some(rate_limited) = stats.rate_limited {
        let _ = writeln!(body, "# TYPE xseed_rate_limited_total counter");
        let _ = writeln!(body, "xseed_rate_limited_total {rate_limited}");
    }
    let _ = writeln!(body, "# TYPE xseed_stage_latency_ns summary");
    for stage in Stage::ALL {
        let snap = obs.latency(stage);
        let stage = stage.name();
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(
                body,
                "xseed_stage_latency_ns{{stage=\"{stage}\",quantile=\"{label}\"}} {}",
                snap.percentile(q)
            );
        }
        let _ = writeln!(
            body,
            "xseed_stage_latency_ns_max{{stage=\"{stage}\"}} {}",
            snap.max()
        );
        let _ = writeln!(
            body,
            "xseed_stage_latency_ns_count{{stage=\"{stage}\"}} {}",
            snap.count()
        );
    }
    let _ = writeln!(body, "# TYPE xseed_q_error summary");
    push_q_error(&mut body, "scope=\"global\"", &obs.q_error());
    // Per-document accuracy, only for documents that have actually been
    // graded — silent docs would add all-zero rows for every load.
    for info in &infos {
        if !info.q_error.is_empty() {
            let label = format!("doc=\"{}\"", json_escape(&info.name));
            push_q_error(&mut body, &label, &info.q_error);
        }
    }
    let lines = body.lines().count();
    Response::Line(format!("OK metrics lines={lines}\n{}", body.trim_end()))
}

/// Appends one q-error family (quantiles, max, count) for `label`.
fn push_q_error(body: &mut String, label: &str, snap: &HistogramSnapshot) {
    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
        let _ = writeln!(
            body,
            "xseed_q_error{{{label},quantile=\"{tag}\"}} {}",
            format_milli_q(snap.percentile(q))
        );
    }
    let _ = writeln!(
        body,
        "xseed_q_error_max{{{label}}} {}",
        format_milli_q(snap.max())
    );
    let _ = writeln!(body, "xseed_q_error_count{{{label}}} {}", snap.count());
}

/// `TRACE [n]`: replays the last `n` (default 16) recorded service
/// events, oldest first. One `OK trace n=<k> capacity=<c>` header, then
/// `k` lines of `trace seq=… t=+…ms event=… doc=…`.
fn handle_trace(service: &Service, args: &str) -> Response {
    let args = args.trim();
    let n = if args.is_empty() {
        16
    } else {
        match args.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Response::err(format_args!(
                    "bad TRACE count '{args}' (want a positive integer)"
                ))
            }
        }
    };
    let Some(obs) = service.obs() else {
        return Response::err("observability is disabled (restart without --no-observability)");
    };
    let ring = obs.trace();
    let events = ring.last(n);
    let mut body = format!("trace n={} capacity={}", events.len(), ring.capacity());
    for event in &events {
        let _ = write!(
            body,
            "\ntrace seq={} t=+{}ms event={} doc={}",
            event.seq,
            event.at_ms,
            event.kind.name(),
            event.subject,
        );
    }
    Response::ok(body)
}

/// Escapes a string for embedding in a JSON string literal (document
/// names come from client-supplied LOAD arguments).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn format_est(est: f64) -> String {
    // Integral estimates print without a trailing ".0"; fractional ones
    // keep full precision.
    if est.fract() == 0.0 && est.abs() < 1e15 {
        format!("{}", est as i64)
    } else {
        format!("{est}")
    }
}

/// Convenience for driving a whole scripted session (used by tests and
/// the CI smoke run): feeds each line to [`handle_line`], returning the
/// responses up to and including the first `QUIT`.
pub fn run_script(service: &Service, script: &str) -> Vec<String> {
    let options = ProtocolOptions::local();
    let mut out = Vec::new();
    for line in script.lines() {
        match handle_line(service, line, &options) {
            Response::Line(reply) => out.push(reply),
            Response::Silent => {}
            Response::Quit => {
                out.push("OK bye".to_string());
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::service::ServiceConfig;
    use std::sync::Arc;

    fn service() -> Service {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Service::new(catalog, ServiceConfig::with_workers(2))
    }

    fn reply(service: &Service, line: &str) -> String {
        handle_line(service, line, &ProtocolOptions::local())
            .text()
            .unwrap()
            .to_string()
    }

    #[test]
    fn est_and_batch_roundtrip() {
        let service = service();
        assert_eq!(reply(&service, "EST fig2 /a/c/s"), "OK 5");
        let batch = reply(&service, "BATCH fig2 /a/c/s ; //p ; /a/zzz");
        assert_eq!(batch, "OK n=3 5 17 0");
        assert!(reply(&service, "EST fig2 /a/c/s[t]/p").starts_with("OK 3.6"));
    }

    #[test]
    fn est_mode_bound_roundtrip() {
        let service = service();
        // The bound reply carries both values; //* bounds exactly at the
        // 36-node document, and /a/c/s is integral in both modes.
        assert_eq!(
            reply(&service, "EST fig2 mode=bound /a/c/s"),
            "OK est=5 bound=5"
        );
        assert_eq!(
            reply(&service, "EST fig2 mode=bound //*"),
            "OK est=36 bound=36"
        );
        let pred = reply(&service, "EST fig2 mode=bound /a/c/s[t]/p");
        assert!(pred.starts_with("OK est=3.6 bound="), "{pred}");
        // Absent labels bound to zero; point mode is untouched.
        assert_eq!(
            reply(&service, "EST fig2 mode=bound /a/zzz"),
            "OK est=0 bound=0"
        );
        assert_eq!(reply(&service, "EST fig2 /a/c/s"), "OK 5");
        // ERR rows: unknown mode, missing query, unknown document.
        assert!(
            reply(&service, "EST fig2 mode=exact /a").starts_with("ERR unknown EST mode 'exact'")
        );
        assert!(reply(&service, "EST fig2 mode=bound").starts_with("ERR EST needs"));
        assert!(reply(&service, "EST nope mode=bound /a").starts_with("ERR unknown document"));
        assert!(reply(&service, "HELP").contains("mode=bound"));
    }

    #[test]
    fn load_builtin_and_estimate() {
        let service = service();
        let loaded = reply(&service, "LOAD bank builtin:treebank@0.02");
        assert!(
            loaded.starts_with("OK loaded name=bank epoch=0"),
            "{loaded}"
        );
        let est = reply(&service, "EST bank //S");
        assert!(est.starts_with("OK "), "{est}");
        assert!(reply(&service, "LOAD x builtin:nope").starts_with("ERR "));
        assert!(reply(&service, "LOAD x builtin:xmark@huh").starts_with("ERR "));
        assert!(reply(&service, "LOAD x /no/such/file.xml").starts_with("ERR "));
    }

    #[test]
    fn load_partitions_flag_builds_bit_identical_synopses() {
        let service = service();
        // Monolithic reply shape is unchanged; partitioned loads echo the
        // worker count.
        let mono = reply(&service, "LOAD mono builtin:figure4");
        assert!(mono.starts_with("OK loaded name=mono"), "{mono}");
        assert!(!mono.contains("partitions="), "{mono}");
        let part = reply(&service, "LOAD part builtin:figure4 partitions=4");
        assert!(part.ends_with(" partitions=4"), "{part}");
        // partitions=1 is the monolithic build — no suffix.
        let one = reply(&service, "LOAD one builtin:figure4 partitions=1");
        assert!(!one.contains("partitions="), "{one}");
        // Same vertices/elements header, and bit-identical estimates.
        let stats = |r: &str| r.split_once(" epoch=").unwrap().1.to_string();
        assert_eq!(stats(&mono), stats(&part).replace(" partitions=4", ""));
        for q in ["/a/b/d", "//e", "/a/b/d[f]/e", "//*"] {
            assert_eq!(
                reply(&service, &format!("EST mono {q}")),
                reply(&service, &format!("EST part {q}")),
                "{q}"
            );
        }
        // A session-wide default applies without a per-LOAD flag.
        let defaulted = ProtocolOptions {
            build_partitions: Some(3),
            ..ProtocolOptions::local()
        };
        let d = handle_line(&service, "LOAD dflt builtin:figure4", &defaulted);
        assert!(d.text().unwrap().ends_with(" partitions=3"), "{d:?}");
        assert_eq!(
            reply(&service, "EST mono /a/b/d[f]/e"),
            reply(&service, "EST dflt /a/b/d[f]/e")
        );
    }

    #[test]
    fn load_partitions_flag_rejects_bad_values_and_snapshot_restores() {
        let service = service();
        assert!(reply(&service, "LOAD x builtin:figure2 partitions=0")
            .starts_with("ERR bad partitions value '0'"));
        assert!(reply(&service, "LOAD x builtin:figure2 partitions=zap")
            .starts_with("ERR bad partitions value 'zap'"));
        assert!(reply(&service, "LOAD x builtin:figure2 partitionz=2")
            .starts_with("ERR unknown LOAD flag"));
        assert!(reply(&service, "LOAD x file:/tmp/nope.xsnap partitions=2")
            .starts_with("ERR partitions= does not apply to file: snapshots"));
    }

    #[test]
    fn errors_and_help_and_quit() {
        let service = service();
        assert!(reply(&service, "EST nope /a").starts_with("ERR unknown document"));
        assert!(reply(&service, "EST fig2 /[").starts_with("ERR parse error"));
        assert!(reply(&service, "BATCH fig2").starts_with("ERR "));
        assert!(reply(&service, "FROB x").starts_with("ERR unknown command"));
        assert!(reply(&service, "HELP").contains("BATCH"));
        let local = ProtocolOptions::local();
        assert_eq!(handle_line(&service, "# comment", &local), Response::Silent);
        assert_eq!(handle_line(&service, "   ", &local), Response::Silent);
        assert_eq!(handle_line(&service, "QUIT", &local), Response::Quit);
        assert_eq!(handle_line(&service, "quit", &local), Response::Quit);
    }

    #[test]
    fn remote_sessions_cannot_read_server_files_or_oversize_builtins() {
        let service = service();
        let remote = ProtocolOptions::remote();
        let denied = handle_line(&service, "LOAD x /etc/hostname", &remote);
        assert!(denied.text().unwrap().starts_with("ERR filesystem LOAD"));
        let oversized = handle_line(&service, "LOAD x builtin:xmark@100000", &remote);
        assert!(oversized.text().unwrap().contains("out of range"));
        let nan = handle_line(&service, "LOAD x builtin:xmark@NaN", &remote);
        assert!(nan.text().unwrap().starts_with("ERR "));
        // In-range builtins still load remotely.
        let ok = handle_line(&service, "LOAD x builtin:xmark@0.05", &remote);
        assert!(ok.text().unwrap().starts_with("OK loaded"), "{ok:?}");
    }

    #[test]
    fn save_and_load_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xseed-protocol-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("fig2.xsnap");
        let service = service();
        let est_before = reply(&service, "EST fig2 /a/c/s[t]/p");

        let saved = reply(&service, &format!("SAVE fig2 {}", path.display()));
        assert!(saved.starts_with("OK saved name=fig2 bytes="), "{saved}");
        let loaded = reply(&service, &format!("LOAD copy file:{}", path.display()));
        assert!(
            loaded.starts_with("OK loaded name=copy epoch=0"),
            "{loaded}"
        );
        assert_eq!(reply(&service, "EST copy /a/c/s[t]/p"), est_before);

        assert!(reply(&service, "SAVE nope /tmp/x.xsnap").starts_with("ERR unknown document"));
        assert!(reply(&service, "SAVE fig2").starts_with("ERR SAVE needs"));
        let missing = reply(&service, "LOAD x file:/no/such/snap.xsnap");
        assert!(missing.starts_with("ERR cannot load snapshot"), "{missing}");
        let stats = reply(&service, "STATS");
        assert!(stats.contains("persist_saves=1"), "{stats}");
        assert!(stats.contains("persist_loads=1"), "{stats}");
        assert!(stats.contains("persist_load_failures=1"), "{stats}");
        assert!(stats.contains("quarantined=0"), "{stats}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remote_sessions_cannot_save_or_load_snapshots() {
        let service = service();
        let remote = ProtocolOptions::remote();
        let save = handle_line(&service, "SAVE fig2 /tmp/fig2.xsnap", &remote);
        assert!(
            save.text().unwrap().starts_with("ERR filesystem SAVE"),
            "{save:?}"
        );
        let load = handle_line(&service, "LOAD x file:/tmp/fig2.xsnap", &remote);
        assert!(
            load.text().unwrap().starts_with("ERR filesystem LOAD"),
            "{load:?}"
        );
    }

    #[test]
    fn remote_sessions_cannot_grow_the_catalog_without_bound() {
        let service = service();
        let capped = ProtocolOptions {
            max_documents: Some(2),
            ..ProtocolOptions::remote()
        };
        // One slot left (fig2 is pre-loaded).
        let ok = handle_line(&service, "LOAD extra builtin:dblp@0.02", &capped);
        assert!(ok.text().unwrap().starts_with("OK loaded"), "{ok:?}");
        let denied = handle_line(&service, "LOAD third builtin:dblp@0.02", &capped);
        assert!(
            denied
                .text()
                .unwrap()
                .starts_with("ERR catalog document limit"),
            "{denied:?}"
        );
        // Replacing an existing name is always allowed.
        let replaced = handle_line(&service, "LOAD extra builtin:dblp@0.02", &capped);
        assert!(
            replaced.text().unwrap().starts_with("OK loaded"),
            "{replaced:?}"
        );
    }

    #[test]
    fn feedback_and_maintain_drive_an_auto_rebuild() {
        let service = service();
        let loaded = reply(&service, "LOAD fig4 builtin:figure4 retain");
        assert!(loaded.ends_with("retained=yes"), "{loaded}");
        assert_eq!(
            reply(&service, "MAINTAIN fig4 error-mass=4"),
            "OK maintenance name=fig4 policy=error-mass:4 retained=yes"
        );
        // The kernel misestimates the correlated Figure 4 path; feeding
        // the truth back crosses the bound and the handler waits for the
        // triggered rebuild, so the follow-up estimate is exact.
        let fb = reply(&service, "FEEDBACK fig4 20 /a/b/d/e");
        assert!(fb.starts_with("OK feedback outcome=simple"), "{fb}");
        assert!(fb.contains(" actual=20 "), "{fb}");
        assert!(fb.contains(" rebuild=done "), "{fb}");
        assert_eq!(reply(&service, "EST fig4 /a/b/d/e"), "OK 20");
        let stats = reply(&service, "STATS");
        assert!(stats.contains("feedback_applied=1"), "{stats}");
        assert!(stats.contains("rebuilds_triggered=1"), "{stats}");
        assert!(stats.contains("error_mass=0"), "{stats}");
        assert!(stats.contains(",rebuilds=1]"), "{stats}");
    }

    #[test]
    fn feedback_without_policy_updates_without_rebuild() {
        let service = service();
        // Correlated feedback with an explicit base path cardinality.
        let fb = reply(&service, "FEEDBACK fig2 4 base=9 /a/c/s[t]/p");
        assert!(fb.starts_with("OK feedback outcome=correlated"), "{fb}");
        assert!(fb.contains(" rebuild=none "), "{fb}");
        // Unsupported shapes are reported and counted but change nothing.
        let ignored = reply(&service, "FEEDBACK fig2 2 //s//p");
        assert!(
            ignored.starts_with("OK feedback outcome=unsupported"),
            "{ignored}"
        );
        let stats = reply(&service, "STATS");
        assert!(
            stats.contains("feedback_applied=1 feedback_ignored=1"),
            "{stats}"
        );
        assert!(stats.contains("rebuilds_triggered=0"), "{stats}");
    }

    #[test]
    fn feedback_and_maintain_reject_malformed_requests() {
        let service = service();
        assert!(reply(&service, "FEEDBACK fig2").starts_with("ERR FEEDBACK needs"));
        assert!(reply(&service, "FEEDBACK fig2 7").starts_with("ERR FEEDBACK needs"));
        assert!(reply(&service, "FEEDBACK fig2 x /a").starts_with("ERR bad FEEDBACK actual"));
        assert!(reply(&service, "FEEDBACK fig2 7 base=x /a").starts_with("ERR bad FEEDBACK base"));
        assert!(reply(&service, "FEEDBACK fig2 7 base=2").starts_with("ERR FEEDBACK needs"));
        assert!(reply(&service, "FEEDBACK nope 7 /a").starts_with("ERR unknown document"));
        assert!(reply(&service, "FEEDBACK fig2 7 /[").starts_with("ERR parse error"));
        assert!(reply(&service, "MAINTAIN fig2").starts_with("ERR MAINTAIN needs"));
        assert!(reply(&service, "MAINTAIN fig2 bogus").starts_with("ERR MAINTAIN needs"));
        assert!(reply(&service, "MAINTAIN fig2 error-mass=-1").starts_with("ERR bad MAINTAIN"));
        assert!(reply(&service, "MAINTAIN fig2 every=0").starts_with("ERR bad MAINTAIN"));
        assert!(reply(&service, "MAINTAIN nope manual").starts_with("ERR unknown document"));
        // A policy without retention arms but reports it cannot fire.
        assert_eq!(
            reply(&service, "MAINTAIN fig2 every=3"),
            "OK maintenance name=fig2 policy=every:3 retained=no"
        );
    }

    #[test]
    fn builtin_samples_load_without_scale() {
        let service = service();
        let loaded = reply(&service, "LOAD f2 builtin:figure2");
        assert!(loaded.starts_with("OK loaded name=f2"), "{loaded}");
        assert!(!loaded.contains("retained"), "{loaded}");
        assert_eq!(reply(&service, "EST f2 /a/c/s"), "OK 5");
        assert!(reply(&service, "LOAD f4 builtin:figure4@0.5")
            .starts_with("ERR builtin sample 'figure4' takes no @scale"));
    }

    #[test]
    fn auto_maintenance_sessions_retain_and_rebuild_every_load() {
        let service = service();
        let auto = ProtocolOptions {
            auto_maintenance: Some(MaintenancePolicy::ErrorMassBound(4.0)),
            ..ProtocolOptions::local()
        };
        let loaded = handle_line(&service, "LOAD fig4 builtin:figure4", &auto);
        assert!(
            loaded.text().unwrap().ends_with("retained=yes"),
            "{loaded:?}"
        );
        let fb = handle_line(&service, "FEEDBACK fig4 20 /a/b/d/e", &auto);
        assert!(fb.text().unwrap().contains("rebuild=done"), "{fb:?}");
    }

    #[test]
    fn stats_reports_docs() {
        let service = service();
        let _ = reply(&service, "EST fig2 //p");
        let stats = reply(&service, "STATS");
        assert!(stats.contains("workers=2"), "{stats}");
        assert!(stats.contains("doc:fig2@0"), "{stats}");
        assert!(stats.contains("executed=1"), "{stats}");
        assert!(stats.contains("accepted=1 shed=0 queued=0"), "{stats}");
        assert!(stats.contains("queue_capacity=1024"), "{stats}");
        assert!(stats.contains("compiled_hits="), "{stats}");
    }

    #[test]
    fn stats_json_mirrors_flat_counters() {
        let service = service();
        let _ = reply(&service, "EST fig2 //p");
        let json = reply(&service, "STATS json");
        assert!(json.starts_with("OK {"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        // Same counters as the flat form, structurally embedded.
        assert!(json.contains("\"workers\":2"), "{json}");
        assert!(json.contains("\"executed\":1"), "{json}");
        assert!(json.contains("\"queue_capacity\":1024"), "{json}");
        assert!(
            json.contains("\"docs\":[{\"name\":\"fig2\",\"epoch\":0,"),
            "{json}"
        );
        assert!(json.contains("\"compiled_misses\":"), "{json}");
        // Braces and brackets balance (no serde, so guard the hand-rolled
        // serializer against drift).
        let body = json.strip_prefix("OK ").unwrap();
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = body.matches(open).count();
            let closes = body.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
        // Mode is case-insensitive; anything else is an error.
        assert!(reply(&service, "STATS JSON").starts_with("OK {"));
        assert!(reply(&service, "STATS xml").starts_with("ERR unknown STATS mode"));
    }

    #[test]
    fn stats_json_escapes_document_names() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tnl\n"), "tab\\u0009nl\\u000a");
    }

    #[test]
    fn overloaded_batches_get_the_structured_reply() {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        let service = Service::new(
            catalog,
            ServiceConfig::with_workers(1).with_queue_capacity(4),
        );
        // A batch larger than the whole queue budget can never be
        // admitted: the shed is deterministic and structured.
        let shed = reply(&service, "BATCH fig2 //p ; //p ; //p ; //p ; //p");
        assert_eq!(shed, "OVERLOADED queued=0 capacity=4");
        // The counters show the pressure; a fitting batch still runs.
        assert!(reply(&service, "STATS").contains("shed=5"));
        assert_eq!(reply(&service, "BATCH fig2 //p ; //p"), "OK n=2 17 17");
    }

    #[test]
    fn stats_reports_uptime_and_qerr() {
        let service = service();
        let fb = reply(&service, "FEEDBACK fig2 20 /a/c/s");
        assert!(fb.starts_with("OK feedback outcome=simple"), "{fb}");
        // fig2 holds /a/c/s = 5 exactly, so q = 20/5 = 4.0 → milli-q
        // 4000 → bucket upper edge 4095 — deterministic on the wire.
        let stats = reply(&service, "STATS");
        assert!(stats.contains(" uptime_secs="), "{stats}");
        assert!(
            stats.contains("qerr_count=1 qerr_p50=4.095 qerr_p90=4.095 qerr_p99=4.095"),
            "{stats}"
        );
        let json = reply(&service, "STATS json");
        assert!(json.contains("\"uptime_secs\":"), "{json}");
        assert!(
            json.contains("\"qerr\":{\"count\":1,\"p50\":4.095,\"p90\":4.095,\"p99\":4.095}"),
            "{json}"
        );
    }

    #[test]
    fn metrics_exposes_stage_latency_and_q_error() {
        let service = service();
        let _ = reply(&service, "EST fig2 /a/c/s");
        let _ = reply(&service, "FEEDBACK fig2 20 /a/c/s");
        let metrics = reply(&service, "METRICS");
        let mut lines = metrics.lines();
        let header = lines.next().unwrap();
        let declared: usize = header
            .strip_prefix("OK metrics lines=")
            .expect(header)
            .parse()
            .unwrap();
        assert_eq!(lines.count(), declared, "{metrics}");
        assert!(metrics.contains("xseed_uptime_seconds "), "{metrics}");
        assert!(metrics.contains("xseed_executed_total 1"), "{metrics}");
        assert!(
            metrics.contains("xseed_stage_latency_ns{stage=\"estimate\",quantile=\"0.5\"} "),
            "{metrics}"
        );
        assert!(
            metrics.contains("xseed_stage_latency_ns_count{stage=\"estimate\"} 1"),
            "{metrics}"
        );
        // Every stage is present even before it ever fires.
        assert!(
            metrics.contains("xseed_stage_latency_ns_count{stage=\"het_rebuild\"} 0"),
            "{metrics}"
        );
        assert!(
            metrics.contains("xseed_q_error{scope=\"global\",quantile=\"0.99\"} 4.095"),
            "{metrics}"
        );
        // The graded document gets its own q-error rows.
        assert!(
            metrics.contains("xseed_q_error{doc=\"fig2\",quantile=\"0.5\"} 4.095"),
            "{metrics}"
        );
        assert!(
            metrics.contains("xseed_q_error_count{doc=\"fig2\"} 1"),
            "{metrics}"
        );
        assert!(reply(&service, "METRICS json").starts_with("ERR METRICS takes no"));
    }

    #[test]
    fn trace_replays_recent_events() {
        let service = service();
        let _ = reply(&service, "LOAD f4 builtin:figure4 retain");
        let _ = reply(&service, "MAINTAIN f4 error-mass=1");
        let fb = reply(&service, "FEEDBACK f4 20 /a/b/d/e");
        assert!(fb.contains("rebuild=done"), "{fb}");
        let trace = reply(&service, "TRACE");
        assert!(trace.starts_with("OK trace n=2 capacity=256"), "{trace}");
        assert!(trace.contains("event=load doc=f4"), "{trace}");
        assert!(trace.contains("event=rebuild doc=f4"), "{trace}");
        // Bounded replay and argument validation.
        let one = reply(&service, "TRACE 1");
        assert!(one.starts_with("OK trace n=1 "), "{one}");
        assert!(one.contains("event=rebuild"), "{one}");
        assert!(reply(&service, "TRACE zero").starts_with("ERR bad TRACE count"));
        assert!(reply(&service, "TRACE 0").starts_with("ERR bad TRACE count"));
    }

    #[test]
    fn observability_off_disables_the_obs_surface() {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        let service = Service::new(
            catalog,
            ServiceConfig::with_workers(1).with_observability(false),
        );
        assert_eq!(reply(&service, "EST fig2 /a/c/s"), "OK 5");
        assert!(reply(&service, "METRICS").starts_with("ERR observability is disabled"));
        assert!(reply(&service, "TRACE").starts_with("ERR observability is disabled"));
        let stats = reply(&service, "STATS");
        assert!(!stats.contains("qerr_"), "{stats}");
        assert!(stats.contains(" uptime_secs="), "uptime stays: {stats}");
        assert!(!reply(&service, "STATS json").contains("\"qerr\""));
    }

    #[test]
    fn scripted_session_runs_to_quit() {
        let service = service();
        let replies = run_script(&service, "EST fig2 /a/c/s\nSTATS\nQUIT\nEST fig2 //p\n");
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0], "OK 5");
        assert_eq!(replies[2], "OK bye");
    }
}
