//! Session serving: stdin/stdout streams and the nonblocking TCP event
//! loop.
//!
//! [`serve_stream`] drives one protocol session over any `BufRead`/`Write`
//! pair (the stdin mode of `xseed-serve`). [`TcpServer`] is the
//! production front end: a single-threaded **epoll event loop** (via the
//! [`netpoll`] crate — hand-rolled, no external deps) multiplexing every
//! connection over nonblocking sockets, so ten thousand mostly-idle
//! optimizer sessions cost ten thousand small buffers, not ten thousand
//! threads. Estimation work still fans out across the [`Service`] worker
//! pool; the loop thread only parses lines, dispatches them, and shuttles
//! bytes.
//!
//! Per connection the loop keeps a read buffer and a write buffer, which
//! buys the semantics a blocking thread-per-connection design gets for
//! free — without the threads:
//!
//! * **pipelining** — a client may send many request lines in one
//!   write; replies come back in order, batched into as few writes as the
//!   socket accepts;
//! * **partial lines** — bytes accumulate until a `\n` completes a
//!   request (bounded by the 64 KiB line cap below);
//! * **slow consumers** — replies the client has not drained sit in the
//!   write buffer; past a high-water mark the loop stops *reading* from
//!   that connection (backpressure) instead of buffering without bound,
//!   and resumes once the client catches up;
//! * **half-closed sockets** — a client that shuts down its write side
//!   after pipelining requests still receives every reply before the
//!   server closes.
//!
//! The loop enforces the same bounds as its thread-per-connection
//! predecessor, with identical wire behavior:
//!
//! * a **connection limit** ([`ServerConfig::max_connections`]): a client
//!   arriving past the limit receives one structured
//!   `OVERLOADED connections=<n> max=<m>` line and is disconnected;
//! * an **idle-session timeout** ([`ServerConfig::idle_timeout`]): a
//!   connection that sends nothing for the configured duration receives
//!   `ERR idle timeout, closing` and is dropped;
//! * a **request-line length cap** (64 KiB): a line that long with no
//!   newline gets `ERR request line exceeds … bytes, closing`.
//!
//! New with the event loop is **per-client fairness**
//! ([`ServerConfig::client_rate`] / [`ServerConfig::client_burst`], off
//! by default): each connection gets its own token bucket
//! ([`crate::limiter`]), and a request arriving to an empty bucket is
//! answered `OVERLOADED rate=<r> burst=<b>` without executing — so one
//! flooding client exhausts only its own budget while every other
//! session keeps its full rate. Sheds are counted in `STATS`
//! (`rate_limited=`) and shed *episodes* appear in the trace ring
//! (`rate_limit_on`/`rate_limit_off`, subject `conn-<token>`).
//!
//! All bounds compose with the per-worker queue budgets inside
//! [`crate::service`]: the connection limit caps *who may talk*, the
//! client rate caps *how often each may ask*, the queue budget caps *how
//! much queued work they may pile up*, and everything past any bound
//! degrades into an explicit protocol reply instead of an unbounded
//! queue. See `docs/OPERATIONS.md` ("Sizing the network tier").
//!
//! Sessions also carry the feedback loop: `FEEDBACK`/`MAINTAIN` lines
//! route through the same [`crate::Service`], so every connected client
//! shares one set of self-maintaining synopses — a rebuild triggered by
//! one session's feedback serves every other session's next estimate.

use crate::limiter::RateLimiter;
use crate::protocol::{handle_line, ProtocolOptions, Response};
use crate::service::Service;
use crate::trace::TraceKind;
use netpoll::{Interest, Poller};
use std::collections::HashMap;
use std::io::{BufRead, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`TcpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; arrivals past the limit
    /// are refused with an `OVERLOADED connections=…` line. Clamped to at
    /// least 1.
    pub max_connections: usize,
    /// Close a session after this long without a complete request line
    /// (`None` = never). The client is told (`ERR idle timeout, closing`)
    /// before the socket closes.
    pub idle_timeout: Option<Duration>,
    /// Per-client token-bucket rate, requests per second (`None` = no
    /// limit, the default). Each connection refills independently.
    pub client_rate: Option<f64>,
    /// Per-client bucket depth, requests (defaults to the rate — one
    /// second of budget — and is clamped to at least one token). Only
    /// meaningful with `client_rate`.
    pub client_burst: Option<f64>,
    /// Per-session protocol policy (filesystem loads, builtin scale caps,
    /// document limits).
    pub options: ProtocolOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            client_rate: None,
            client_burst: None,
            options: ProtocolOptions::remote(),
        }
    }
}

/// Drives one protocol session: reads request lines from `input`, writes
/// one reply line per request to `output`, returns on `QUIT`, EOF, or an
/// I/O error. This is the stdin mode of `xseed-serve`; TCP sessions go
/// through [`TcpServer`]'s event loop instead.
pub fn serve_stream(
    service: &Service,
    options: &ProtocolOptions,
    input: impl BufRead,
    mut output: impl Write,
) {
    for line in input.lines() {
        let Ok(line) = line else { return };
        if !write_response(&mut output, handle_line(service, &line, options)) {
            return;
        }
    }
}

/// Writes one response; `false` when the session should end (client quit
/// or the socket went away).
fn write_response(output: &mut impl Write, response: Response) -> bool {
    match response {
        Response::Line(reply) => writeln!(output, "{reply}")
            .and_then(|()| output.flush())
            .is_ok(),
        Response::Silent => true,
        Response::Quit => {
            let _ = writeln!(output, "OK bye");
            let _ = output.flush();
            false
        }
    }
}

/// The nonblocking TCP front end. See the module docs.
pub struct TcpServer {
    listener: TcpListener,
    config: ServerConfig,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the event loop forever, serving every connection multiplexed
    /// over one poller (estimation itself runs on `service`'s worker
    /// pool). Returns only if the poller or listener fails fatally at
    /// setup; accept-time errors are reported on stderr and survived.
    pub fn run(&self, service: Arc<Service>) -> std::io::Result<()> {
        EventLoop::new(&self.listener, self.config.clone(), service)?.run()
    }
}

/// Longest request line a TCP session may send. Far above any legitimate
/// request (the longest verb is a `BATCH` of a few hundred queries), and
/// it bounds the per-session read buffer: without a cap, a client
/// trickling bytes with no `\n` would grow the read buffer without limit
/// *and* dodge the idle timeout (each byte arrives "in time").
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Pending-reply bytes past which the loop stops reading from a
/// connection until the client drains (slow-consumer backpressure). One
/// reply can still exceed this — the buffer grows to hold whatever the
/// requests already admitted produce — but no new requests are read
/// while over the mark.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// How long a session whose protocol life is over (QUIT, idle timeout,
/// oversized line, half-close) may take to drain its final buffered
/// replies before the socket is closed regardless.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// The poller token of the listening socket; connections count up from 1.
const LISTENER_TOKEN: u64 = 0;

/// Per-connection state in the event loop.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed as complete request lines.
    read_buf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    sent: usize,
    /// Last time a read delivered bytes (arms the idle timeout).
    last_activity: Instant,
    /// This connection's token bucket ([`RateLimiter::Unlimited`] when
    /// the server has no `client_rate`).
    limiter: RateLimiter,
    /// Currently inside a rate-limit shed episode (for the
    /// `rate_limit_on`/`rate_limit_off` trace transitions).
    limited: bool,
    /// The client closed its write side; remaining complete lines are
    /// served, then the connection drains and closes.
    peer_eof: bool,
    /// Set when the session is over (QUIT, timeout, oversize, EOF):
    /// deadline by which the final flush must finish.
    draining: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.sent
    }

    fn push_reply(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }
}

/// The single-threaded epoll loop: owns the listener, the poller, and
/// every connection's buffers. See the module docs for the design.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Whether the previous accept was refused, so the trace ring records
    /// the transition into (and out of) connection shedding rather than
    /// one event per refused client.
    refusing: bool,
    /// Prototype bucket cloned into each new connection, plus the exact
    /// refusal line; `None` when no client rate is configured.
    limiter_template: RateLimiter,
    overloaded_reply: Option<String>,
    /// Monotonic origin for the limiter's nanosecond clock.
    started: Instant,
    max_connections: usize,
}

impl EventLoop {
    fn new(
        listener: &TcpListener,
        config: ServerConfig,
        service: Arc<Service>,
    ) -> std::io::Result<EventLoop> {
        let listener = listener.try_clone()?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let limiter_template = RateLimiter::from_config(config.client_rate, config.client_burst);
        let overloaded_reply = match &limiter_template {
            RateLimiter::Unlimited => None,
            RateLimiter::Bucket(bucket) => {
                service.arm_rate_limiter();
                Some(format!(
                    "OVERLOADED rate={} burst={}",
                    bucket.rate(),
                    bucket.burst()
                ))
            }
        };
        let max_connections = config.max_connections.max(1);
        Ok(EventLoop {
            poller,
            listener,
            service,
            config,
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
            refusing: false,
            limiter_template,
            overloaded_reply,
            started: Instant::now(),
            max_connections,
        })
    }

    fn run(&mut self) -> std::io::Result<()> {
        let mut events = Vec::new();
        loop {
            let timeout = self
                .next_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            self.poller.wait(&mut events, timeout)?;
            for event in &events {
                if event.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                if event.error {
                    self.close(event.token);
                    continue;
                }
                // Read before write: a hangup may still carry pipelined
                // request bytes to serve.
                if event.readable || event.hangup {
                    self.read_ready(event.token);
                }
                if event.writable {
                    self.write_ready(event.token);
                }
            }
            self.sweep_deadlines();
        }
    }

    /// The next instant something must happen without client I/O: an
    /// idle session timing out or a draining session's grace expiring.
    fn next_deadline(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        for conn in self.conns.values() {
            let deadline = match conn.draining {
                Some(drain) => Some(drain),
                None => self
                    .config
                    .idle_timeout
                    .map(|idle| conn.last_activity + idle),
            };
            if let Some(d) = deadline {
                next = Some(match next {
                    Some(n) => n.min(d),
                    None => d,
                });
            }
        }
        next
    }

    /// Expires idle sessions (with a goodbye) and force-closes draining
    /// sessions whose grace ran out.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let mut idle = Vec::new();
        let mut dead = Vec::new();
        for (&token, conn) in &self.conns {
            match (conn.draining, self.config.idle_timeout) {
                (Some(drain), _) if now >= drain => dead.push(token),
                (None, Some(limit)) if now >= conn.last_activity + limit => idle.push(token),
                _ => {}
            }
        }
        for token in dead {
            self.close(token);
        }
        for token in idle {
            if let Some(conn) = self.conns.get_mut(&token) {
                // Idle too long (or a partial line stalled past the
                // timeout): tell the client and hang up.
                conn.push_reply("ERR idle timeout, closing");
                conn.read_buf.clear();
                conn.draining = Some(now + DRAIN_GRACE);
                self.flush(token);
            }
        }
    }

    /// Accepts every pending connection (level-triggered, so stopping at
    /// `WouldBlock` is safe). Arrivals past the connection limit get one
    /// structured refusal line and are dropped.
    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient conditions (a client resetting between
                    // SYN and accept, fd exhaustion) resolve themselves;
                    // the pause keeps a persistent error from spinning
                    // hot, and the loop simply retries on the next wake.
                    eprintln!("xseed-serve: accept failed (continuing): {e}");
                    std::thread::sleep(Duration::from_millis(100));
                    return;
                }
            };
            if self.conns.len() >= self.max_connections {
                // Refuse loudly: one structured line, then close. The
                // socket is still blocking here, but a one-line write to
                // a fresh socket's empty send buffer cannot stall.
                let mut stream = stream;
                let _ = writeln!(
                    stream,
                    "OVERLOADED connections={} max={}",
                    self.conns.len(),
                    self.max_connections
                );
                if !self.refusing {
                    self.refusing = true;
                    if let Some(obs) = self.service.obs() {
                        obs.trace().record(TraceKind::ShedOn, "connections");
                    }
                }
                continue;
            }
            if self.refusing {
                self.refusing = false;
                if let Some(obs) = self.service.obs() {
                    obs.trace().record(TraceKind::ShedOff, "connections");
                }
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .add(stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.conns.insert(
                token,
                Conn {
                    stream,
                    read_buf: Vec::new(),
                    write_buf: Vec::new(),
                    sent: 0,
                    last_activity: Instant::now(),
                    limiter: self.limiter_template.clone(),
                    limited: false,
                    peer_eof: false,
                    draining: None,
                    interest: Interest::READABLE,
                },
            );
        }
    }

    /// Reads whatever the socket has, then serves every complete request
    /// line that arrived.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.draining.is_some() || !conn.interest.readable {
            // Draining sessions and backpressured connections ignore new
            // bytes; level-triggered epoll will resurface them if the
            // connection ever reads again.
            return;
        }
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                    // Stop pulling once a flood has buffered a full
                    // line-cap's worth; what we have is processed first
                    // and level-triggered readiness re-fires for the rest.
                    if conn.read_buf.len() > MAX_LINE_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.process_lines(token);
    }

    /// Consumes complete lines from the connection's read buffer, running
    /// each through the rate limiter and the protocol handler in order.
    fn process_lines(&mut self, token: u64) {
        let now_ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut consumed = 0;
        while conn.draining.is_none() {
            let rest = &conn.read_buf[consumed..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                if rest.len() >= MAX_LINE_BYTES {
                    conn.push_reply(&format!(
                        "ERR request line exceeds {MAX_LINE_BYTES} bytes, closing"
                    ));
                    consumed = conn.read_buf.len();
                    conn.draining = Some(Instant::now() + DRAIN_GRACE);
                }
                break;
            };
            if nl >= MAX_LINE_BYTES {
                conn.push_reply(&format!(
                    "ERR request line exceeds {MAX_LINE_BYTES} bytes, closing"
                ));
                consumed = conn.read_buf.len();
                conn.draining = Some(Instant::now() + DRAIN_GRACE);
                break;
            }
            let line = &rest[..nl];
            let line = match line.last() {
                Some(b'\r') => &line[..nl - 1],
                _ => line,
            };
            let Ok(line) = std::str::from_utf8(line) else {
                // Mirrors the blocking server: a non-UTF-8 request line
                // ends the session without a reply.
                self.close(token);
                return;
            };
            let line = line.to_owned();
            consumed += nl + 1;
            // Blank lines and comments are free: they do no work and
            // get no reply, and shedding one would inject an OVERLOADED
            // line where stdin sessions print silence. QUIT/EXIT are
            // never shed either — the limiter guards estimation work,
            // and a throttled client hanging up promptly is exactly the
            // behavior we want from it.
            let verb = line.split_whitespace().next().unwrap_or("");
            let is_noise = verb.is_empty() || verb.starts_with('#');
            let is_quit = matches!(verb, "QUIT" | "EXIT");
            if !is_noise && !is_quit && !conn.limiter.admit(now_ns) {
                conn.push_reply(self.overloaded_reply.as_deref().unwrap_or(""));
                self.service.note_rate_limited();
                if !conn.limited {
                    conn.limited = true;
                    if let Some(obs) = self.service.obs() {
                        obs.trace()
                            .record(TraceKind::RateLimitOn, &format!("conn-{token}"));
                    }
                }
                continue;
            }
            if !is_noise && conn.limited {
                conn.limited = false;
                if let Some(obs) = self.service.obs() {
                    obs.trace()
                        .record(TraceKind::RateLimitOff, &format!("conn-{token}"));
                }
            }
            match handle_line(&self.service, &line, &self.config.options) {
                Response::Line(reply) => conn.push_reply(&reply),
                Response::Silent => {}
                Response::Quit => {
                    conn.push_reply("OK bye");
                    consumed = conn.read_buf.len();
                    conn.draining = Some(Instant::now() + DRAIN_GRACE);
                }
            }
        }
        conn.read_buf.drain(..consumed);
        if conn.peer_eof && conn.draining.is_none() {
            // Half-close: no further requests can arrive (an incomplete
            // trailing line is dropped); serve what was pipelined, flush,
            // close.
            conn.read_buf.clear();
            conn.draining = Some(Instant::now() + DRAIN_GRACE);
        }
        self.flush(token);
    }

    fn write_ready(&mut self, token: u64) {
        self.flush(token);
    }

    /// Pushes buffered reply bytes into the socket, closes finished
    /// draining sessions, and re-registers interest to match what is
    /// left to do.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.sent < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.sent..]) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => conn.sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        if conn.sent == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.sent = 0;
            if conn.draining.is_some() {
                self.close(token);
                return;
            }
        } else if conn.sent > MAX_LINE_BYTES {
            // Reclaim the flushed prefix of a large in-flight buffer so a
            // slow consumer cannot pin already-delivered bytes.
            conn.write_buf.drain(..conn.sent);
            conn.sent = 0;
        }
        let want = Interest {
            readable: conn.draining.is_none()
                && !conn.peer_eof
                && conn.pending_write() < WRITE_HIGH_WATER,
            writable: conn.pending_write() > 0,
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::service::ServiceConfig;
    use xseed_core::XseedConfig;

    fn service() -> Arc<Service> {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Arc::new(Service::new(catalog, ServiceConfig::with_workers(1)))
    }

    #[test]
    fn serve_stream_runs_a_session_to_quit() {
        let service = service();
        let input = b"EST fig2 /a/c/s\nQUIT\nEST fig2 //p\n";
        let mut output = Vec::new();
        serve_stream(&service, &ProtocolOptions::local(), &input[..], &mut output);
        assert_eq!(String::from_utf8(output).unwrap(), "OK 5\nOK bye\n");
    }

    #[test]
    fn serve_stream_runs_the_feedback_loop() {
        let service = service();
        let input = b"LOAD fig4 builtin:figure4 retain\n\
                      MAINTAIN fig4 error-mass=4\n\
                      FEEDBACK fig4 20 /a/b/d/e\n\
                      EST fig4 /a/b/d/e\nQUIT\n";
        let mut output = Vec::new();
        serve_stream(&service, &ProtocolOptions::local(), &input[..], &mut output);
        let output = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 5, "{output}");
        assert!(lines[2].contains("rebuild=done"), "{output}");
        assert_eq!(lines[3], "OK 20", "post-rebuild estimate is exact");
    }

    #[test]
    fn serve_stream_stops_at_eof() {
        let service = service();
        let mut output = Vec::new();
        serve_stream(
            &service,
            &ProtocolOptions::local(),
            &b"# just a comment\n"[..],
            &mut output,
        );
        assert!(output.is_empty());
    }

    #[test]
    fn default_config_has_no_rate_limit() {
        let config = ServerConfig::default();
        assert!(config.client_rate.is_none() && config.client_burst.is_none());
        assert_eq!(
            RateLimiter::from_config(config.client_rate, config.client_burst),
            RateLimiter::Unlimited
        );
    }
}
