//! Session serving: stdin/stdout streams and the bounded TCP front end.
//!
//! [`serve_stream`] drives one protocol session over any `BufRead`/`Write`
//! pair (the stdin mode of `xseed-serve`, and the per-connection loop of
//! the TCP mode). [`TcpServer`] is the production front end: a bounded
//! accept loop enforcing
//!
//! * a **connection limit** ([`ServerConfig::max_connections`]): a client
//!   arriving past the limit receives one structured
//!   `OVERLOADED connections=<n> max=<m>` line and is disconnected —
//!   never silently dropped, and never admitted to grow the thread count
//!   without bound; and
//! * an **idle-session timeout** ([`ServerConfig::idle_timeout`]): a
//!   connection that sends nothing for the configured duration receives
//!   `ERR idle timeout, closing` and is dropped, so abandoned sockets
//!   cannot pin server threads (or their session slots) forever; and
//! * a **request-line length cap** (64 KiB): a line that long with no
//!   newline gets `ERR request line exceeds … bytes, closing`, so a
//!   client trickling an endless line can neither grow the read buffer
//!   without bound nor ride under the idle timeout indefinitely.
//!
//! Both bounds compose with the per-worker queue budgets inside
//! [`crate::service`]: the connection limit caps *who may talk*, the
//! queue budget caps *how much queued work they may pile up*, and
//! everything past either bound degrades into an explicit protocol reply
//! instead of an unbounded queue. See `docs/OPERATIONS.md` for sizing
//! guidance.
//!
//! Sessions also carry the feedback loop: `FEEDBACK`/`MAINTAIN` lines
//! route through the same [`crate::Service`], so every connected client
//! shares one set of self-maintaining synopses — a rebuild triggered by
//! one session's feedback serves every other session's next estimate.
//! The per-session [`ProtocolOptions`] decide whether loads retain their
//! documents automatically (`auto_maintenance`, set by the daemon's
//! `--maintain-error-mass` flag).

use crate::protocol::{handle_line, ProtocolOptions, Response};
use crate::service::Service;
use crate::trace::TraceKind;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`TcpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; arrivals past the limit
    /// are refused with an `OVERLOADED connections=…` line. Clamped to at
    /// least 1.
    pub max_connections: usize,
    /// Close a session after this long without a complete request line
    /// (`None` = never). The client is told (`ERR idle timeout, closing`)
    /// before the socket closes.
    pub idle_timeout: Option<Duration>,
    /// Per-session protocol policy (filesystem loads, builtin scale caps,
    /// document limits).
    pub options: ProtocolOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Some(Duration::from_secs(300)),
            options: ProtocolOptions::remote(),
        }
    }
}

/// Drives one protocol session: reads request lines from `input`, writes
/// one reply line per request to `output`, returns on `QUIT`, EOF, or an
/// I/O error. This is the stdin mode of `xseed-serve`; TCP sessions go
/// through [`TcpServer`], which adds the idle timeout around the reads.
pub fn serve_stream(
    service: &Service,
    options: &ProtocolOptions,
    input: impl BufRead,
    mut output: impl Write,
) {
    for line in input.lines() {
        let Ok(line) = line else { return };
        if !write_response(&mut output, handle_line(service, &line, options)) {
            return;
        }
    }
}

/// Writes one response; `false` when the session should end (client quit
/// or the socket went away).
fn write_response(output: &mut impl Write, response: Response) -> bool {
    match response {
        Response::Line(reply) => writeln!(output, "{reply}")
            .and_then(|()| output.flush())
            .is_ok(),
        Response::Silent => true,
        Response::Quit => {
            let _ = writeln!(output, "OK bye");
            let _ = output.flush();
            false
        }
    }
}

/// Counts live sessions; an RAII guard releases a slot when its session
/// thread finishes, so refused connections never leak capacity.
struct ConnectionSlots {
    live: AtomicUsize,
    max: usize,
}

struct SlotGuard(Arc<ConnectionSlots>);

impl ConnectionSlots {
    /// Claims a slot, or reports the occupancy that refused the claim.
    fn try_claim(self: &Arc<Self>) -> Result<SlotGuard, usize> {
        self.live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
                (live < self.max).then_some(live + 1)
            })
            .map(|_| SlotGuard(self.clone()))
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The bounded TCP front end. See the module docs.
pub struct TcpServer {
    listener: TcpListener,
    config: ServerConfig,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections forever (one thread per admitted
    /// session, all sharing `service`'s worker pool and catalog).
    ///
    /// Accept errors never take the daemon down: they are reported on
    /// stderr and the loop continues after a short pause (transient
    /// conditions like a client resetting between SYN and `accept`, or
    /// fd exhaustion, resolve themselves; the pause keeps a persistent
    /// error from spinning hot). The `io::Result` return exists for
    /// future fatal-shutdown paths and is currently never an `Err`.
    pub fn run(&self, service: Arc<Service>) -> std::io::Result<()> {
        let slots = Arc::new(ConnectionSlots {
            live: AtomicUsize::new(0),
            max: self.config.max_connections.max(1),
        });
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Tracks whether the *previous* accept was refused, so the trace
        // ring records the transition into (and out of) connection
        // shedding rather than one event per refused client. The accept
        // loop is single-threaded, so a plain bool suffices.
        let mut refusing = false;
        for stream in self.listener.incoming() {
            let mut stream: TcpStream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    eprintln!("xseed-serve: accept failed (continuing): {e}");
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            };
            sessions.retain(|h| !h.is_finished());
            let slot = match slots.try_claim() {
                Ok(slot) => slot,
                Err(live) => {
                    // Refuse loudly: one structured line, then close.
                    let _ = writeln!(stream, "OVERLOADED connections={live} max={}", slots.max);
                    if !refusing {
                        refusing = true;
                        if let Some(obs) = service.obs() {
                            obs.trace().record(TraceKind::ShedOn, "connections");
                        }
                    }
                    continue;
                }
            };
            if refusing {
                refusing = false;
                if let Some(obs) = service.obs() {
                    obs.trace().record(TraceKind::ShedOff, "connections");
                }
            }
            let service = service.clone();
            let options = self.config.options.clone();
            let idle = self.config.idle_timeout;
            sessions.push(std::thread::spawn(move || {
                serve_tcp_session(&service, &options, stream, idle);
                drop(slot);
            }));
        }
        Ok(())
    }
}

/// Longest request line a TCP session may send. Far above any legitimate
/// request (the longest verb is a `BATCH` of a few hundred queries), and
/// it bounds the per-session read buffer: without a cap, a client
/// trickling bytes with no `\n` would grow the line buffer without limit
/// *and* dodge the idle timeout (each byte arrives "in time").
const MAX_LINE_BYTES: u64 = 64 * 1024;

/// One TCP session: [`serve_stream`] semantics plus the idle timeout and
/// the request-line length cap.
fn serve_tcp_session(
    service: &Service,
    options: &ProtocolOptions,
    stream: TcpStream,
    idle_timeout: Option<Duration>,
) {
    if stream.set_read_timeout(idle_timeout).is_err() {
        return;
    }
    let mut output = match stream.try_clone() {
        Ok(out) => out,
        Err(_) => return,
    };
    let mut input = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // The cap is re-armed per line; a line that fills it without a
        // terminating newline is oversized (EOF exactly at the boundary
        // is indistinguishable and closed the same way).
        match std::io::Read::take(&mut input, MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(n) => {
                if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
                    let _ = writeln!(
                        output,
                        "ERR request line exceeds {MAX_LINE_BYTES} bytes, closing"
                    );
                    return;
                }
                if !write_response(&mut output, handle_line(service, &line, options)) {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle too long (or a partial line stalled past the
                // timeout): tell the client and hang up.
                let _ = writeln!(output, "ERR idle timeout, closing");
                return;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::service::ServiceConfig;
    use xseed_core::XseedConfig;

    fn service() -> Arc<Service> {
        let catalog = Arc::new(Catalog::new());
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        Arc::new(Service::new(catalog, ServiceConfig::with_workers(1)))
    }

    #[test]
    fn serve_stream_runs_a_session_to_quit() {
        let service = service();
        let input = b"EST fig2 /a/c/s\nQUIT\nEST fig2 //p\n";
        let mut output = Vec::new();
        serve_stream(&service, &ProtocolOptions::local(), &input[..], &mut output);
        assert_eq!(String::from_utf8(output).unwrap(), "OK 5\nOK bye\n");
    }

    #[test]
    fn serve_stream_runs_the_feedback_loop() {
        let service = service();
        let input = b"LOAD fig4 builtin:figure4 retain\n\
                      MAINTAIN fig4 error-mass=4\n\
                      FEEDBACK fig4 20 /a/b/d/e\n\
                      EST fig4 /a/b/d/e\nQUIT\n";
        let mut output = Vec::new();
        serve_stream(&service, &ProtocolOptions::local(), &input[..], &mut output);
        let output = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 5, "{output}");
        assert!(lines[2].contains("rebuild=done"), "{output}");
        assert_eq!(lines[3], "OK 20", "post-rebuild estimate is exact");
    }

    #[test]
    fn serve_stream_stops_at_eof() {
        let service = service();
        let mut output = Vec::new();
        serve_stream(
            &service,
            &ProtocolOptions::local(),
            &b"# just a comment\n"[..],
            &mut output,
        );
        assert!(output.is_empty());
    }

    #[test]
    fn connection_slots_release_on_drop() {
        let slots = Arc::new(ConnectionSlots {
            live: AtomicUsize::new(0),
            max: 2,
        });
        let a = slots.try_claim().unwrap();
        let _b = slots.try_claim().unwrap();
        assert_eq!(slots.try_claim().err(), Some(2));
        drop(a);
        assert!(slots.try_claim().is_ok());
    }
}
