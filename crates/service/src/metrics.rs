//! Hand-rolled observability metrics: lock-free log-bucketed latency
//! histograms, online q-error accuracy tracking, and the [`Obs`] registry
//! the service threads record into.
//!
//! The workspace has no registry access, so there is no metrics crate to
//! lean on; the histogram here is the classic HdrHistogram-lite shape
//! used by production servers:
//!
//! * **Power-of-two buckets.** A recorded value lands in the bucket
//!   indexed by its bit length (`64 − leading_zeros`), so bucket `i`
//!   covers `[2^(i−1), 2^i)` and 64 buckets span the whole `u64` range —
//!   nanosecond latencies from sub-microsecond parses to multi-second
//!   rebuilds fit one fixed array with ≤2× relative error.
//! * **Per-thread shards of relaxed atomics.** Each recording thread is
//!   assigned a shard on first use (a thread-local slot index), and a
//!   record is **one relaxed `fetch_add`** on that shard's bucket — no
//!   locks, no CAS loops, no false sharing between workers on different
//!   shards. The hot path of a timed stage is therefore one
//!   `Instant::now()` pair plus one atomic increment — and the batched
//!   per-query stages amortize even that: one pair times a whole chunk
//!   and `n` samples of the chunk mean land with a single `fetch_add`
//!   ([`Obs::record_amortized`]), so per-query cost is ~zero clock reads.
//! * **Merge at read time.** [`Histogram::snapshot`] sums the shards into
//!   a plain [`HistogramSnapshot`]; percentiles, counts, and the max are
//!   derived from the merged buckets. Readers are rare (a `STATS` or
//!   `METRICS` request), so the read path pays the O(shards × buckets)
//!   walk instead of the write path paying anything.
//!
//! Reported percentiles are the **upper edge of the bucket holding the
//! true quantile**: for a quantile landing in bucket `i` the report is
//! `2^i − 1`, which is ≥ the true value and < 2× it — "within one log
//! bucket", the contract the property tests pin.
//!
//! **Q-error** (`max(est/actual, actual/est)`, the grading metric of the
//! cardinality-estimation benchmark literature) reuses the same histogram
//! with values in **milli-q** (`q × 1000` as an integer, inputs clamped to
//! ≥ 1 so empty results don't divide by zero). Because bucket edges are
//! fixed integers, the reported q-error percentiles are a deterministic
//! function of the feedback stream — the session transcripts assert them
//! byte-for-byte.

use crate::trace::TraceRing;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of log2 buckets; covers the full `u64` value range.
pub const BUCKETS: usize = 64;

/// Capacity of the service's event trace ring (see [`TraceRing`]).
pub const TRACE_CAPACITY: usize = 256;

/// The instrumented pipeline stages, from wire to disk. Each owns one
/// latency histogram in [`Obs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// `QueryPlan::parse` of a query text (plan-cache miss path).
    Parse,
    /// A whole plan-cache lookup (`get_or_parse`), hit or miss.
    PlanLookup,
    /// Compiling a plan into the snapshot's compiled-query cache
    /// (compiled-cache miss path).
    Compile,
    /// One estimate executed by a worker (per query, batched or not).
    Estimate,
    /// One whole batch chunk executed by a worker (multi-query jobs only).
    BatchChunk,
    /// One `FEEDBACK` observation applied through the catalog.
    FeedbackApply,
    /// One automatic HET rebuild run by the maintenance thread.
    HetRebuild,
    /// One snapshot written to disk (`SAVE`).
    SnapshotSave,
    /// One snapshot restored from disk (`LOAD … file:` / warm start).
    SnapshotLoad,
}

impl Stage {
    /// Every stage, in wire order (the order `METRICS` emits).
    pub const ALL: [Stage; 9] = [
        Stage::Parse,
        Stage::PlanLookup,
        Stage::Compile,
        Stage::Estimate,
        Stage::BatchChunk,
        Stage::FeedbackApply,
        Stage::HetRebuild,
        Stage::SnapshotSave,
        Stage::SnapshotLoad,
    ];

    /// The stable wire label (the `stage="…"` value in `METRICS`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::PlanLookup => "plan_lookup",
            Stage::Compile => "compile",
            Stage::Estimate => "estimate",
            Stage::BatchChunk => "batch_chunk",
            Stage::FeedbackApply => "feedback_apply",
            Stage::HetRebuild => "het_rebuild",
            Stage::SnapshotSave => "snapshot_save",
            Stage::SnapshotLoad => "snapshot_load",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::PlanLookup => 1,
            Stage::Compile => 2,
            Stage::Estimate => 3,
            Stage::BatchChunk => 4,
            Stage::FeedbackApply => 5,
            Stage::HetRebuild => 6,
            Stage::SnapshotSave => 7,
            Stage::SnapshotLoad => 8,
        }
    }
}

/// One shard of buckets. Shards are written by distinct threads, so the
/// per-bucket atomics are uncontended in the steady state.
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Process-wide counter handing each recording thread a distinct slot;
/// a histogram maps the slot onto its shards by modulo.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let v = slot.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
        slot.set(v);
        v
    })
}

/// The bucket index of a value: its bit length, so bucket 0 holds exactly
/// 0 and bucket `i ≥ 1` holds `[2^(i−1), 2^i)`; everything ≥ `2^63`
/// clamps into the top bucket.
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `i` can hold (`2^i − 1`; `u64::MAX` for the
/// top bucket, which also absorbs everything ≥ `2^63`).
fn bucket_upper(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free log-bucketed histogram. See the module docs.
pub struct Histogram {
    shards: Box<[HistShard]>,
}

impl Histogram {
    /// Creates a histogram with `shards` write shards (clamped to ≥ 1).
    /// Size it to the number of threads expected to record concurrently;
    /// extra threads share shards correctly, just with more contention.
    pub fn new(shards: usize) -> Self {
        Histogram {
            shards: (0..shards.max(1)).map(|_| HistShard::new()).collect(),
        }
    }

    /// Records one value: a single relaxed `fetch_add` on the calling
    /// thread's shard.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical values with one `fetch_add` — the amortized
    /// form batch stages use (one timing pair for a whole chunk, `n`
    /// samples of the mean).
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let shard = &self.shards[thread_slot() % self.shards.len()];
        shard.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merges every shard into one point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for shard in self.shards.iter() {
            for (bucket, count) in merged.buckets.iter_mut().zip(shard.buckets.iter()) {
                *bucket += count.load(Ordering::Relaxed);
            }
        }
        merged
    }
}

/// A merged, read-side view of a [`Histogram`] — also usable standalone
/// as a plain (non-atomic) histogram for state already behind a lock
/// (the catalog's per-document q-error tracking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Records one value into the snapshot (single-threaded form).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every count of `other` into `self`. Merging is commutative
    /// and associative and preserves totals exactly (pinned by the
    /// property tests).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The quantile `q` (in `(0, 1]`): the upper edge of the bucket
    /// holding the true quantile, i.e. ≥ the true value and < 2× it.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Upper bound of the largest recorded value (upper edge of the
    /// highest non-empty bucket); 0 for an empty histogram.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }
}

/// The q-error of a served estimate against its observed cardinality, in
/// **milli-q** (`max(est/actual, actual/est) × 1000`, inputs clamped to
/// ≥ 1). A perfect estimate is 1000; integer milli-q keeps the histogram
/// deterministic on the wire.
pub fn q_error_milli(estimated: f64, actual: u64) -> u64 {
    let est = estimated.max(1.0);
    let act = (actual as f64).max(1.0);
    let q = (est / act).max(act / est);
    (q * 1000.0).min(u64::MAX as f64) as u64
}

/// Formats a milli-q value as its decimal q-error (`1023` → `"1.023"`);
/// pure integer arithmetic so the wire form is deterministic.
pub fn format_milli_q(milli: u64) -> String {
    format!("{}.{:03}", milli / 1000, milli % 1000)
}

/// The service's observability registry: per-stage latency histograms,
/// the global q-error histogram, the event trace ring, and the start
/// instant they are all measured against. Created once per [`Service`]
/// when [`ServiceConfig::observability`] is on and shared by every
/// thread; absent entirely (an `Option`) when off, so the disabled cost
/// is one pointer null check per would-be sample.
///
/// [`Service`]: crate::Service
/// [`ServiceConfig::observability`]: crate::ServiceConfig
pub struct Obs {
    start: Instant,
    latency: [Histogram; Stage::ALL.len()],
    q_error: Histogram,
    trace: TraceRing,
}

impl Obs {
    /// Creates a registry whose histograms carry `shards` write shards
    /// each (size to the worker count plus a few submitter threads).
    pub fn new(shards: usize) -> Self {
        let start = Instant::now();
        Obs {
            start,
            latency: std::array::from_fn(|_| Histogram::new(shards)),
            q_error: Histogram::new(shards),
            trace: TraceRing::new(TRACE_CAPACITY, start),
        }
    }

    /// Records one stage timing.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.latency[stage.index()].record_duration(elapsed);
    }

    /// Records `n` samples of `total / n` — the amortized form for
    /// per-query stages on batched paths: one `Instant` pair covers the
    /// whole chunk, so observability costs no clock reads per query, at
    /// the price of flattening within-chunk tails to the chunk mean
    /// (chunk-to-chunk variation still lands in distinct buckets).
    pub fn record_amortized(&self, stage: Stage, total: Duration, n: u64) {
        if n == 0 {
            return;
        }
        let mean = (total.as_nanos() / n as u128).min(u64::MAX as u128) as u64;
        self.latency[stage.index()].record_n(mean, n);
    }

    /// Folds one served-accuracy observation (an applied `FEEDBACK`) into
    /// the global q-error histogram.
    pub fn record_q_error(&self, estimated: f64, actual: u64) {
        self.q_error.record(q_error_milli(estimated, actual));
    }

    /// Merged view of one stage's latency histogram.
    pub fn latency(&self, stage: Stage) -> HistogramSnapshot {
        self.latency[stage.index()].snapshot()
    }

    /// Merged view of the global q-error histogram (milli-q values).
    pub fn q_error(&self) -> HistogramSnapshot {
        self.q_error.snapshot()
    }

    /// The event trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Time since the registry (≈ the service) started.
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_and_upper_bracket_every_value() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_index(1u64 << 62), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn top_bucket_absorbs_the_high_range() {
        let mut snap = HistogramSnapshot::default();
        snap.record(u64::MAX);
        snap.record(1u64 << 63);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), u64::MAX);
        assert_eq!(snap.percentile(0.5), u64::MAX);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let mut snap = HistogramSnapshot::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            snap.record(v);
        }
        assert_eq!(snap.count(), 10);
        assert_eq!(snap.percentile(0.5), 1);
        assert_eq!(snap.percentile(0.9), 1);
        // The p99 rank (ceil(9.9) = 10) is the 1000 sample: bucket 10,
        // upper edge 1023.
        assert_eq!(snap.percentile(0.99), 1023);
        assert_eq!(snap.max(), 1023);
        assert!(!snap.is_empty());
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
        assert_eq!(HistogramSnapshot::default().max(), 0);
    }

    #[test]
    fn q_error_is_symmetric_clamped_and_formats() {
        assert_eq!(q_error_milli(10.0, 10), 1000);
        assert_eq!(q_error_milli(5.0, 10), 2000);
        assert_eq!(q_error_milli(10.0, 5), 2000);
        // Zero-cardinality observations clamp instead of dividing by zero.
        assert_eq!(q_error_milli(0.0, 0), 1000);
        assert_eq!(q_error_milli(0.0, 7), 7000);
        assert_eq!(format_milli_q(1000), "1.000");
        assert_eq!(format_milli_q(1023), "1.023");
        assert_eq!(format_milli_q(12345), "12.345");
        assert_eq!(format_milli_q(0), "0.000");
    }

    #[test]
    fn concurrent_records_lose_no_samples() {
        // 8 threads × 10_000 records against an intentionally undersized
        // shard array (forcing shard sharing): the merged count must be
        // exact — relaxed atomics may reorder, but fetch_add never drops.
        let hist = std::sync::Arc::new(Histogram::new(4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let hist = hist.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 31 + i % 4096);
                    }
                })
            })
            .collect();
        for handle in threads {
            handle.join().unwrap();
        }
        assert_eq!(hist.snapshot().count(), 80_000);
    }

    #[test]
    fn obs_records_stages_independently() {
        let obs = Obs::new(2);
        obs.record(Stage::Parse, Duration::from_nanos(500));
        obs.record(Stage::Parse, Duration::from_nanos(700));
        obs.record(Stage::HetRebuild, Duration::from_millis(3));
        assert_eq!(obs.latency(Stage::Parse).count(), 2);
        assert_eq!(obs.latency(Stage::HetRebuild).count(), 1);
        assert_eq!(obs.latency(Stage::Estimate).count(), 0);
        obs.record_q_error(7.0, 20);
        assert_eq!(obs.q_error().count(), 1);
        // Every stage has a distinct index and wire name.
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Shard merges commute and totals are exact: recording a value
        /// set through any split into two histograms and merging (in
        /// either order) equals recording it all into one.
        #[test]
        fn merge_is_associative_and_exact(
            left in prop::collection::vec(0u64..1_000_000_000, 0..80),
            right in prop::collection::vec(0u64..1_000_000_000, 0..80),
        ) {
            let mut a = HistogramSnapshot::default();
            for &v in &left { a.record(v); }
            let mut b = HistogramSnapshot::default();
            for &v in &right { b.record(v); }

            let mut whole = HistogramSnapshot::default();
            for &v in left.iter().chain(right.iter()) { whole.record(v); }

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(&ab, &whole);
            prop_assert_eq!(ab.count(), (left.len() + right.len()) as u64);
        }

        /// Reported percentiles are within one log bucket of the true
        /// quantile: `true ≤ reported ≤ 2 × true` (with the zero case
        /// exact).
        #[test]
        fn percentiles_stay_within_one_bucket(
            samples in prop::collection::vec(0u64..1_000_000_000, 1..120),
        ) {
            let mut snap = HistogramSnapshot::default();
            for &v in &samples { snap.record(v); }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let reported = snap.percentile(q);
                prop_assert!(reported >= truth,
                    "p{q}: reported {reported} below true {truth}");
                prop_assert!(reported <= truth.saturating_mul(2),
                    "p{q}: reported {reported} beyond one bucket of {truth}");
            }
            let true_max = *sorted.last().unwrap();
            prop_assert!(snap.max() >= true_max);
            prop_assert!(snap.max() <= true_max.saturating_mul(2));
        }
    }
}
