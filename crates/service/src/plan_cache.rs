//! Sharded LRU cache from query text to parsed plans.
//!
//! Every estimate request arrives as text; parsing and classifying it
//! ([`QueryPlan::parse`]) is pure, so the result is cached and shared
//! across worker threads behind an `Arc`. The cache is sharded by a hash
//! of the query text: each shard has its own mutex and its own LRU state,
//! so concurrent lookups of different queries rarely contend on the same
//! lock. Parsing itself always happens *outside* any lock — a miss costs
//! one parse and two brief shard acquisitions.
//!
//! Recency is tracked with a per-shard logical clock: each hit stamps the
//! entry, and eviction removes the least-recently-stamped entry of the
//! full shard (an `O(shard size)` scan, bounded by the per-shard capacity,
//! which is small by construction).

use crate::metrics::{Obs, Stage};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use xpathkit::{ParseError, QueryPlan};

#[derive(Default)]
struct Shard {
    map: HashMap<String, CachedPlan>,
    tick: u64,
}

struct CachedPlan {
    plan: Arc<QueryPlan>,
    last_used: u64,
}

/// Counters and occupancy of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
    /// Plans currently resident.
    pub entries: usize,
}

/// A sharded LRU plan cache. See the module docs.
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    obs: Option<Arc<Obs>>,
}

impl PlanCache {
    /// Creates a cache of `shards` independent shards holding about
    /// `capacity` plans in total. Both values are clamped to at least 1.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Attaches an observability registry (builder style): lookups are
    /// then timed into [`Stage::PlanLookup`] and parses into
    /// [`Stage::Parse`].
    pub fn with_obs(mut self, obs: Option<Arc<Obs>>) -> Self {
        self.obs = obs;
        self
    }

    fn shard_for(&self, text: &str) -> MutexGuard<'_, Shard> {
        let mut hasher = DefaultHasher::new();
        text.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        self.shards[idx]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Returns the cached plan for `text`, parsing (and inserting) it on a
    /// miss. Parse errors are returned without being cached. The lookup
    /// is timed into [`Stage::PlanLookup`].
    pub fn get_or_parse(&self, text: &str) -> Result<Arc<QueryPlan>, ParseError> {
        let lookup_started = self.obs.as_ref().map(|_| Instant::now());
        let plan = self.lookup(text);
        if let (Some(obs), Some(started)) = (&self.obs, lookup_started) {
            obs.record(Stage::PlanLookup, started.elapsed());
        }
        plan
    }

    /// Resolves a whole batch of texts with **one** timing pair: the
    /// total is recorded as `texts.len()` [`Stage::PlanLookup`] samples
    /// of the mean (see [`Obs::record_amortized`]), so batched lookups
    /// pay no clock reads per query. Stops at (and returns) the first
    /// parse error, recording nothing — the request fails as a whole.
    pub fn get_or_parse_batch(&self, texts: &[&str]) -> Result<Vec<Arc<QueryPlan>>, ParseError> {
        let lookup_started = self.obs.as_ref().map(|_| Instant::now());
        let plans = texts
            .iter()
            .map(|text| self.lookup(text))
            .collect::<Result<Vec<_>, _>>()?;
        if let (Some(obs), Some(started)) = (&self.obs, lookup_started) {
            obs.record_amortized(Stage::PlanLookup, started.elapsed(), texts.len() as u64);
        }
        Ok(plans)
    }

    /// The untimed lookup both public forms share (parses on a miss are
    /// still timed individually into [`Stage::Parse`] — misses leave the
    /// hot path anyway).
    fn lookup(&self, text: &str) -> Result<Arc<QueryPlan>, ParseError> {
        {
            let mut shard = self.shard_for(text);
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(cached) = shard.map.get_mut(text) {
                cached.last_used = tick;
                let plan = cached.plan.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(plan);
            }
        }

        // Miss: parse outside the lock, then insert unless another thread
        // raced us to it (their plan is identical; keeping it is fine).
        let parse_started = self.obs.as_ref().map(|_| Instant::now());
        let plan = Arc::new(QueryPlan::parse(text)?);
        if let (Some(obs), Some(started)) = (&self.obs, parse_started) {
            obs.record(Stage::Parse, started.elapsed());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(text);
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(text) {
            if shard.map.len() >= self.shard_capacity {
                if let Some(oldest) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(k, _)| k.clone())
                {
                    shard.map.remove(&oldest);
                }
            }
            shard.map.insert(
                text.to_string(),
                CachedPlan {
                    plan: plan.clone(),
                    last_used: tick,
                },
            );
        }
        Ok(plan)
    }

    /// Current hit/miss counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .map
                    .len()
            })
            .sum();
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_plan() {
        let cache = PlanCache::new(4, 64);
        let a = cache.get_or_parse("/a/b[c]/d").unwrap();
        let b = cache.get_or_parse("/a/b[c]/d").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = PlanCache::new(2, 8);
        assert!(cache.get_or_parse("/[").is_err());
        assert!(cache.get_or_parse("/[").is_err());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn eviction_keeps_recently_used_plans() {
        // One shard of capacity 2: touching "a" keeps it resident while
        // inserting a third plan evicts the stale one.
        let cache = PlanCache::new(1, 2);
        cache.get_or_parse("/a").unwrap();
        cache.get_or_parse("/b").unwrap();
        cache.get_or_parse("/a").unwrap(); // refresh /a
        cache.get_or_parse("/c").unwrap(); // evicts /b
        assert_eq!(cache.stats().entries, 2);
        let before = cache.stats().hits;
        cache.get_or_parse("/a").unwrap();
        assert_eq!(cache.stats().hits, before + 1);
        cache.get_or_parse("/b").unwrap();
        assert_eq!(
            cache.stats().hits,
            before + 1,
            "/b should have been evicted"
        );
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanCache>();
    }
}
