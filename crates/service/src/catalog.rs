//! The synopsis catalog: many named documents, epoch-versioned snapshots.
//!
//! A [`Catalog`] is the shared registry an estimation service reads from.
//! The name map itself is only ever held briefly (insert/lookup/remove of
//! `Arc`'d entries); each entry carries its own locks, so work on one
//! document never stalls another:
//!
//! * the **read path** ([`Catalog::snapshot`]) clones the entry's
//!   published [`SynopsisSnapshot`] under a brief per-entry read lock and
//!   then never synchronizes again — estimation itself is lock-free;
//! * the **write path** ([`Catalog::update`]) runs the mutation and the
//!   snapshot rebuild (including the kernel re-freeze) under that entry's
//!   mutex only, then swaps the published snapshot in one brief write.
//!   In-flight estimates holding the previous snapshot simply finish
//!   against the epoch they started with.
//!
//! Epochs never regress for a name: re-registering a document under an
//! existing name ([`Catalog::insert`]) advances the new synopsis past the
//! replaced entry's epoch — and removed names remember their last epoch —
//! so `(name, epoch)` remains a valid staleness key across swaps,
//! including remove + re-insert.
//!
//! ## Self-maintenance
//!
//! Each entry optionally **retains its source document**
//! ([`RetentionPolicy::Retain`]), carries a [`MaintenancePolicy`], and
//! accumulates the absolute-error mass that query feedback
//! ([`Catalog::record_feedback`]) exposes. When the policy decides the
//! synopsis has drifted far enough *and* the document is retained, the
//! feedback result reports `rebuild_due` — the serving layer's
//! maintenance thread then calls [`Catalog::rebuild_het_retained`], which
//! rebuilds the HET from the retained document (no caller-supplied
//! document needed) with the entry's configured
//! [`xseed_core::CandidateStrategy`] and resets the drift accounting.

use crate::batch::FeedbackItem;
use crate::metrics::{q_error_milli, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use xmlkit::tree::Document;
use xpathkit::ast::PathExpr;
use xseed_core::{
    BselThresholdStrategy, CandidateContext, CandidateStrategy, FeedbackOutcome, FeedbackReport,
    SynopsisSnapshot, XseedConfig, XseedSynopsis,
};

/// Whether a load keeps the source [`Document`] alongside the synopsis.
///
/// Retention is what makes automatic HET maintenance possible: a rebuild
/// needs the document's exact statistics, and a dropped document would
/// force the caller back into the loop. The cost is the document's heap
/// footprint (typically an order of magnitude above the synopsis itself —
/// see `docs/OPERATIONS.md` for sizing guidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Build the synopsis and drop the document (the pre-maintenance
    /// behavior, and the default).
    #[default]
    Drop,
    /// Keep an `Arc` of the document in the entry for feedback-driven
    /// rebuilds.
    Retain,
}

/// When the catalog should consider a synopsis due for an automatic HET
/// rebuild. Tracked per document; evaluated after every applied feedback.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MaintenancePolicy {
    /// Never triggers automatically; [`Catalog::rebuild_het_retained`] /
    /// [`Catalog::rebuild_het`] remain available. The default.
    #[default]
    Manual,
    /// Due when the accumulated absolute-error mass from feedback
    /// (`Σ |estimated − actual|` since the last rebuild) reaches the
    /// bound.
    ErrorMassBound(f64),
    /// Due every `n` applied feedbacks (a count schedule for workloads
    /// where per-query error magnitudes are not comparable).
    FeedbackCount(u64),
}

/// Per-entry maintenance accounting, behind its own lock so feedback
/// bookkeeping never contends with the read path.
struct MaintenanceState {
    /// The retained source document, if any.
    document: Option<Arc<Document>>,
    policy: MaintenancePolicy,
    /// Strategy handed to automatic rebuilds.
    strategy: Arc<dyn CandidateStrategy + Send + Sync>,
    /// `Σ |estimated − actual|` of applied feedback since the last rebuild.
    error_mass: f64,
    /// Applied feedbacks since the last rebuild (drives
    /// [`MaintenancePolicy::FeedbackCount`]).
    feedback_since_rebuild: u64,
    /// Lifetime counters, surfaced through [`DocumentInfo`].
    feedback_applied: u64,
    feedback_ignored: u64,
    rebuilds: u64,
    /// A rebuild has been reported due but has not completed yet;
    /// suppresses duplicate triggers while feedback keeps arriving.
    rebuild_pending: bool,
    /// Q-error histogram (milli-q) of this document's applied feedback —
    /// served accuracy the way the cardinality-estimation benchmarks
    /// grade it. Plain counts: it lives under this state's lock, which
    /// every applied feedback already takes.
    q_error: HistogramSnapshot,
}

impl MaintenanceState {
    fn new(document: Option<Arc<Document>>, policy: MaintenancePolicy) -> Self {
        MaintenanceState {
            document,
            policy,
            strategy: Arc::new(BselThresholdStrategy),
            error_mass: 0.0,
            feedback_since_rebuild: 0,
            feedback_applied: 0,
            feedback_ignored: 0,
            rebuilds: 0,
            rebuild_pending: false,
            q_error: HistogramSnapshot::default(),
        }
    }

    /// Whether the policy says a rebuild is due right now. Requires a
    /// retained document (nothing to rebuild from otherwise) and no
    /// rebuild already pending.
    fn due(&self) -> bool {
        if self.document.is_none() || self.rebuild_pending {
            return false;
        }
        match self.policy {
            MaintenancePolicy::Manual => false,
            MaintenancePolicy::ErrorMassBound(bound) => self.error_mass >= bound,
            MaintenancePolicy::FeedbackCount(n) => n > 0 && self.feedback_since_rebuild >= n,
        }
    }

    /// Accounts one feedback report; returns `true` when this report made
    /// a rebuild due (and marks it pending so it is reported only once).
    fn note(&mut self, report: &FeedbackReport) -> bool {
        if report.outcome == FeedbackOutcome::Unsupported {
            self.feedback_ignored += 1;
            return false;
        }
        self.feedback_applied += 1;
        self.feedback_since_rebuild += 1;
        self.error_mass += report.error;
        self.q_error
            .record(q_error_milli(report.estimated, report.actual));
        let due = self.due();
        if due {
            self.rebuild_pending = true;
        }
        due
    }

    /// Settles the drift accounting after a completed rebuild that
    /// consumed `consumed_mass` error mass over `consumed_feedbacks`
    /// feedbacks (the values read when the rebuild started). Subtracting
    /// rather than zeroing preserves drift from feedback that raced in
    /// *after* the rebuild captured its document — that drift applies to
    /// the rebuilt table and must keep counting toward the next trigger.
    fn note_rebuilt(&mut self, consumed_mass: f64, consumed_feedbacks: u64) {
        self.error_mass = (self.error_mass - consumed_mass).max(0.0);
        self.feedback_since_rebuild = self
            .feedback_since_rebuild
            .saturating_sub(consumed_feedbacks);
        self.rebuilds += 1;
        self.rebuild_pending = false;
    }
}

/// Adapter letting a shared strategy handle drive
/// [`XseedSynopsis::rebuild_het_with_strategy`] (which takes the strategy
/// by value) without giving up the catalog's stored `Arc`.
#[derive(Debug, Clone)]
struct SharedStrategy(Arc<dyn CandidateStrategy + Send + Sync>);

impl CandidateStrategy for SharedStrategy {
    fn select(&self, ctx: &CandidateContext<'_>) -> Vec<nokstore::PathTreeNodeId> {
        self.0.select(ctx)
    }
}

struct Entry {
    /// The build/update side, locked only by writers.
    synopsis: Mutex<XseedSynopsis>,
    /// The read side: swapped atomically when an update publishes.
    published: RwLock<SynopsisSnapshot>,
    /// Retention + maintenance accounting; see [`MaintenanceState`].
    maintenance: Mutex<MaintenanceState>,
}

impl Entry {
    fn published(&self) -> SynopsisSnapshot {
        self.published
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    fn maintenance(&self) -> std::sync::MutexGuard<'_, MaintenanceState> {
        self.maintenance
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A concurrent registry of named synopses. See the module docs.
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    /// Per-name publication ledger: the highest epoch ever published for
    /// each name. Every publish (insert *or* update) claims its epoch
    /// through this one lock, so two racing publishes — even an update
    /// racing an insert that detaches its entry — can never hand out the
    /// same `(name, epoch)` for different synopsis states, and the
    /// staleness key survives remove + re-insert.
    ledger: Mutex<HashMap<String, u64>>,
}

/// Summary of one catalog entry, as reported by [`Catalog::info`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentInfo {
    /// The entry's name.
    pub name: String,
    /// Epoch of the published snapshot.
    pub epoch: u64,
    /// Synopsis-graph vertices in the published snapshot.
    pub vertices: usize,
    /// Elements of the summarized document(s).
    pub elements: u64,
    /// Total synopsis footprint (kernel + resident HET) in bytes.
    pub size_bytes: usize,
    /// Hits of the published snapshot's compiled-query cache.
    pub compiled_hits: u64,
    /// Misses (compilations) of the published snapshot's compiled-query
    /// cache.
    pub compiled_misses: u64,
    /// Whether the source document is retained for automatic rebuilds.
    pub retained: bool,
    /// The entry's maintenance policy.
    pub policy: MaintenancePolicy,
    /// Accumulated absolute-error mass since the last rebuild.
    pub error_mass: f64,
    /// Feedbacks applied (simple or correlated) over the entry's lifetime.
    pub feedback_applied: u64,
    /// Feedbacks ignored (unsupported shapes) over the entry's lifetime.
    pub feedback_ignored: u64,
    /// HET rebuilds performed through the maintenance path.
    pub rebuilds: u64,
    /// Q-error histogram (milli-q values) of this document's applied
    /// feedback; empty until feedback arrives.
    pub q_error: HistogramSnapshot,
}

/// Result of routing one feedback observation through
/// [`Catalog::record_feedback`].
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogFeedback {
    /// What the synopsis recorded (outcome, prior estimate, error mass).
    pub report: FeedbackReport,
    /// Epoch of the snapshot published by this feedback (unchanged when
    /// the shape was unsupported).
    pub epoch: u64,
    /// The entry's maintenance policy declared a rebuild due — exactly
    /// once per crossing: further feedback keeps accumulating but will
    /// not re-report until [`Catalog::rebuild_het_retained`] completes.
    pub rebuild_due: bool,
}

/// Result of one feedback batch ([`Catalog::record_feedback_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogFeedbackBatch {
    /// Per-item reports, in input order.
    pub reports: Vec<FeedbackReport>,
    /// Epoch of the single snapshot published after the whole batch.
    pub epoch: u64,
    /// See [`CatalogFeedback::rebuild_due`]; evaluated once after the
    /// whole batch is accounted.
    pub rebuild_due: bool,
}

/// Why [`Catalog::rebuild_het_retained`] (or a queued automatic rebuild)
/// could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildError {
    /// The name is not registered.
    UnknownDocument,
    /// The entry exists but retains no source document to rebuild from.
    NotRetained,
    /// The service shut down before the maintenance thread answered.
    ShutDown,
    /// The entry that triggered the rebuild was replaced (re-`LOAD`ed)
    /// before the rebuild ran; the fresh entry starts clean and owes no
    /// rebuild.
    Superseded,
}

impl std::fmt::Display for RebuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildError::UnknownDocument => f.write_str("unknown document"),
            RebuildError::NotRetained => f.write_str("document not retained"),
            RebuildError::ShutDown => f.write_str("service shut down before the rebuild ran"),
            RebuildError::Superseded => f.write_str("document replaced before the rebuild ran"),
        }
    }
}

impl std::error::Error for RebuildError {}

/// Errors from [`Catalog::save_snapshot`] / [`Catalog::load_snapshot`].
#[derive(Debug)]
pub enum SnapshotError {
    /// The named document is not registered.
    UnknownDocument(String),
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The snapshot bytes did not decode (see [`xseed_core::PersistError`]).
    Decode(xseed_core::PersistError),
    /// The spilled document XML in the snapshot did not parse back.
    Document(xmlkit::Error),
    /// The catalog's document cap rejected the load.
    CatalogFull,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnknownDocument(name) => write!(f, "unknown document '{name}'"),
            SnapshotError::Io(e) => write!(f, "{e}"),
            SnapshotError::Decode(e) => write!(f, "{e}"),
            SnapshotError::Document(e) => write!(f, "retained document invalid: {e}"),
            SnapshotError::CatalogFull => write!(f, "catalog document limit reached"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<xseed_core::PersistError> for SnapshotError {
    fn from(e: xseed_core::PersistError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn entry(&self, name: &str) -> Option<Arc<Entry>> {
        self.entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .get(name)
            .cloned()
    }

    /// Claims a publication epoch for `name`: raises the synopsis past
    /// every epoch previously published under the name (when the synopsis
    /// state changed or lags the ledger) and records the claim. The first
    /// publication of a fresh name keeps the synopsis' own epoch.
    fn claim_epoch(&self, name: &str, synopsis: &mut XseedSynopsis, state_changed: bool) {
        let mut ledger = self
            .ledger
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(&last) = ledger.get(name) {
            if state_changed || synopsis.epoch() < last {
                synopsis.advance_epoch(last + 1);
            }
        }
        ledger.insert(name.to_string(), synopsis.epoch());
    }

    /// Registers (or replaces) a synopsis under `name` and publishes its
    /// snapshot, which is also returned. When replacing, the new synopsis
    /// is advanced past the replaced entry's epoch so observers keyed on
    /// `(name, epoch)` see the swap. The initial freeze happens outside
    /// the name-map lock.
    pub fn insert(&self, name: &str, synopsis: XseedSynopsis) -> SynopsisSnapshot {
        self.insert_full(name, synopsis, None, None, MaintenancePolicy::Manual)
            .expect("uncapped insert cannot be rejected")
    }

    /// Like [`Catalog::insert`], but also retains `document` so
    /// feedback-driven maintenance ([`Catalog::rebuild_het_retained`])
    /// can rebuild the entry's HET without the caller re-supplying it.
    /// `document` must be the document `synopsis` summarizes.
    pub fn insert_retained(
        &self,
        name: &str,
        synopsis: XseedSynopsis,
        document: Arc<Document>,
        policy: MaintenancePolicy,
    ) -> SynopsisSnapshot {
        self.insert_full(name, synopsis, None, Some(document), policy)
            .expect("uncapped insert cannot be rejected")
    }

    /// Like [`Catalog::insert`], but refuses to *create* a new entry when
    /// the catalog already holds `max_documents` (replacing an existing
    /// name always succeeds). The capacity check and the map insert
    /// happen under one write lock, so concurrent sessions cannot race
    /// past the cap. Returns `None` when rejected.
    pub fn insert_capped(
        &self,
        name: &str,
        synopsis: XseedSynopsis,
        max_documents: usize,
    ) -> Option<SynopsisSnapshot> {
        self.insert_full(
            name,
            synopsis,
            Some(max_documents),
            None,
            MaintenancePolicy::Manual,
        )
    }

    /// The general registration path: optional capacity cap, optional
    /// retained document, and the initial maintenance policy. Replacing a
    /// name starts its maintenance accounting fresh (the synopsis the old
    /// counters described is gone).
    pub fn insert_full(
        &self,
        name: &str,
        mut synopsis: XseedSynopsis,
        max_documents: Option<usize>,
        document: Option<Arc<Document>>,
        policy: MaintenancePolicy,
    ) -> Option<SynopsisSnapshot> {
        // Claiming through the ledger makes the epoch unique for the name
        // even against racing publishes; the freeze inside `snapshot()`
        // then runs outside the name-map lock. If two inserts race, the
        // last map write wins the published slot (both epochs stay
        // distinct, so stale keys never collide). A claim for an insert
        // the cap then rejects is harmless: the ledger only pushes later
        // epochs upward.
        self.claim_epoch(name, &mut synopsis, true);
        let snapshot = synopsis.snapshot();
        let mut entries = self
            .entries
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(max) = max_documents {
            if !entries.contains_key(name) && entries.len() >= max {
                return None;
            }
        }
        entries.insert(
            name.to_string(),
            Arc::new(Entry {
                synopsis: Mutex::new(synopsis),
                published: RwLock::new(snapshot.clone()),
                maintenance: Mutex::new(MaintenanceState::new(document, policy)),
            }),
        );
        Some(snapshot)
    }

    /// Builds a kernel-only synopsis from a document and registers it.
    pub fn load_document(
        &self,
        name: &str,
        doc: &Document,
        config: XseedConfig,
    ) -> SynopsisSnapshot {
        self.insert(name, XseedSynopsis::build(doc, config))
    }

    /// [`Catalog::load_document`] with an explicit [`RetentionPolicy`]:
    /// `Retain` clones the document into the entry so feedback-driven
    /// maintenance can rebuild without the caller. Callers that already
    /// hold (or can move into) an `Arc<Document>` should prefer
    /// [`Catalog::load_document_arc`], which retains without the deep
    /// copy.
    pub fn load_document_with(
        &self,
        name: &str,
        doc: &Document,
        config: XseedConfig,
        retention: RetentionPolicy,
        policy: MaintenancePolicy,
    ) -> SynopsisSnapshot {
        let synopsis = XseedSynopsis::build(doc, config);
        let document = match retention {
            RetentionPolicy::Drop => None,
            RetentionPolicy::Retain => Some(Arc::new(doc.clone())),
        };
        self.insert_full(name, synopsis, None, document, policy)
            .expect("uncapped insert cannot be rejected")
    }

    /// [`Catalog::load_document`] built with `partitions` parallel
    /// partition workers ([`XseedSynopsis::build_partitioned`]). The
    /// registered synopsis is bit-identical to the monolithic one — same
    /// serialized kernel, same estimates — so callers pick a worker count
    /// purely on build-latency grounds.
    pub fn load_document_partitioned(
        &self,
        name: &str,
        doc: &Document,
        config: XseedConfig,
        partitions: usize,
    ) -> SynopsisSnapshot {
        self.insert(
            name,
            XseedSynopsis::build_partitioned(doc, config, partitions),
        )
    }

    /// Builds and registers a synopsis from a shared document, retaining
    /// the `Arc` itself for automatic rebuilds — no document copy, so
    /// this is the cheap path for large retained documents (the `LOAD …
    /// retain` protocol handler goes through the equivalent
    /// [`Catalog::insert_full`]).
    pub fn load_document_arc(
        &self,
        name: &str,
        doc: Arc<Document>,
        config: XseedConfig,
        policy: MaintenancePolicy,
    ) -> SynopsisSnapshot {
        let synopsis = XseedSynopsis::build(&doc, config);
        self.insert_full(name, synopsis, None, Some(doc), policy)
            .expect("uncapped insert cannot be rejected")
    }

    /// SAX-parses XML text, builds a synopsis, and registers it.
    pub fn load_xml(
        &self,
        name: &str,
        xml: &str,
        config: XseedConfig,
    ) -> Result<SynopsisSnapshot, xmlkit::Error> {
        let synopsis = XseedSynopsis::build_from_xml(xml, config)?;
        Ok(self.insert(name, synopsis))
    }

    /// [`Catalog::load_xml`] with an explicit [`RetentionPolicy`]. With
    /// `Retain`, the XML is parsed into a [`Document`] first so the entry
    /// can keep it for automatic rebuilds.
    pub fn load_xml_with(
        &self,
        name: &str,
        xml: &str,
        config: XseedConfig,
        retention: RetentionPolicy,
        policy: MaintenancePolicy,
    ) -> Result<SynopsisSnapshot, xmlkit::Error> {
        match retention {
            RetentionPolicy::Drop => {
                let synopsis = XseedSynopsis::build_from_xml(xml, config)?;
                Ok(self
                    .insert_full(name, synopsis, None, None, policy)
                    .expect("uncapped insert cannot be rejected"))
            }
            RetentionPolicy::Retain => {
                let doc = Document::parse_str(xml)?;
                Ok(self.load_document_with(name, &doc, config, retention, policy))
            }
        }
    }

    /// The published snapshot of `name`, if registered. This is the read
    /// path: the returned snapshot is self-contained and lock-free.
    pub fn snapshot(&self, name: &str) -> Option<SynopsisSnapshot> {
        self.entry(name).map(|e| e.published())
    }

    /// Applies `mutate` to the synopsis registered under `name`, then
    /// rebuilds and publishes a fresh snapshot (bumping the epoch if the
    /// mutation invalidated estimate state). Returns the mutation's result
    /// and the newly published snapshot. Only this entry's locks are
    /// taken — readers and writers of other documents are unaffected, and
    /// in-flight estimates holding the previous snapshot finish
    /// undisturbed. If `name` is concurrently replaced via
    /// [`Catalog::insert`], the replacement wins the published slot.
    pub fn update<R>(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut XseedSynopsis) -> R,
    ) -> Option<(R, SynopsisSnapshot)> {
        let entry = self.entry(name)?;
        Some(self.update_entry(name, &entry, mutate))
    }

    /// The body of [`Catalog::update`], operating on an already-resolved
    /// entry. Maintenance paths that captured an entry (its retained
    /// document, its drift accounting) go through this so a concurrent
    /// re-registration of `name` can never make them mutate a *different*
    /// entry than the one their captured state belongs to — a rebuild
    /// racing a re-`LOAD` then updates the detached old entry (harmless:
    /// nothing serves it) instead of corrupting the fresh one.
    fn update_entry<R>(
        &self,
        name: &str,
        entry: &Arc<Entry>,
        mutate: impl FnOnce(&mut XseedSynopsis) -> R,
    ) -> (R, SynopsisSnapshot) {
        let mut synopsis = entry
            .synopsis
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let epoch_before = synopsis.epoch();
        let result = mutate(&mut synopsis);
        let state_changed = synopsis.epoch() != epoch_before;
        // Claim the published epoch through the ledger so a racing
        // publish (e.g. an insert replacing this name) can never share it.
        self.claim_epoch(name, &mut synopsis, state_changed);
        // Rebuild (re-freeze) and publish while still holding this
        // entry's mutex: racing updates therefore publish in mutation
        // order, and a slower earlier update can never overwrite a newer
        // published snapshot. The write lock itself is held only for the
        // swap.
        let snapshot = synopsis.snapshot();
        *entry
            .published
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = snapshot.clone();
        drop(synopsis);
        (result, snapshot)
    }

    /// Rebuilds the hyper-edge table of `name` from `doc`'s exact
    /// statistics using the streaming builder and republishes: the epoch
    /// bumps (the HET swap invalidates estimate state) and a fresh
    /// snapshot is installed, while readers keep estimating from the
    /// previously published snapshot for the whole (potentially long)
    /// build — the construction runs under this entry's writer mutex
    /// only, and the published slot's write lock is held just for the
    /// final swap. `doc` must be the document the synopsis summarizes.
    /// Returns the build statistics and the new snapshot, or `None` when
    /// the name is not registered.
    pub fn rebuild_het(
        &self,
        name: &str,
        doc: &Document,
    ) -> Option<(xseed_core::HetBuildStats, SynopsisSnapshot)> {
        self.update(name, |synopsis| synopsis.rebuild_het(doc))
    }

    /// Rebuilds the hyper-edge table of `name` from its **retained**
    /// document — the self-driving form of [`Catalog::rebuild_het`] — with
    /// the entry's configured candidate strategy, then resets the entry's
    /// drift accounting (error mass, feedback schedule) and counts the
    /// rebuild. Readers keep estimating from the previously published
    /// snapshot for the whole build, exactly like a caller-supplied
    /// rebuild.
    pub fn rebuild_het_retained(
        &self,
        name: &str,
    ) -> Result<(xseed_core::HetBuildStats, SynopsisSnapshot), RebuildError> {
        self.rebuild_het_retained_inner(name, false)
    }

    /// The queued-trigger form of [`Catalog::rebuild_het_retained`]: runs
    /// only when the resolved entry still owes a rebuild
    /// (`rebuild_pending`). A re-`LOAD` between the trigger and the
    /// maintenance thread getting to the job installs a fresh entry with
    /// clean accounting — rebuilding it would be pure waste (or worse,
    /// would misreport its retention), so the job answers
    /// [`RebuildError::Superseded`] instead.
    pub(crate) fn rebuild_het_retained_auto(
        &self,
        name: &str,
    ) -> Result<(xseed_core::HetBuildStats, SynopsisSnapshot), RebuildError> {
        self.rebuild_het_retained_inner(name, true)
    }

    fn rebuild_het_retained_inner(
        &self,
        name: &str,
        require_pending: bool,
    ) -> Result<(xseed_core::HetBuildStats, SynopsisSnapshot), RebuildError> {
        let entry = self.entry(name).ok_or(RebuildError::UnknownDocument)?;
        if require_pending && !entry.maintenance().rebuild_pending {
            return Err(RebuildError::Superseded);
        }
        let (doc, strategy, consumed_mass, consumed_feedbacks) = {
            let mut m = entry.maintenance();
            let Some(doc) = m.document.clone() else {
                // A pending trigger cannot complete without a document;
                // clear it so retention re-arms the policy cleanly.
                m.rebuild_pending = false;
                return Err(RebuildError::NotRetained);
            };
            (
                doc,
                SharedStrategy(m.strategy.clone()),
                m.error_mass,
                m.feedback_since_rebuild,
            )
        };
        // Update through the captured entry, not by name: a concurrent
        // re-`LOAD` must never get its fresh synopsis rebuilt from this
        // (now stale) retained document.
        let result = self.update_entry(name, &entry, |synopsis| {
            synopsis.rebuild_het_with_strategy(&doc, strategy)
        });
        entry
            .maintenance()
            .note_rebuilt(consumed_mass, consumed_feedbacks);
        Ok(result)
    }

    /// Routes one observed cardinality through the synopsis' feedback
    /// path. The prior estimate and the shape classification run against
    /// the **published snapshot, lock-free** — the recorded estimate is
    /// exactly what this feedback's client was served, unsupported shapes
    /// never touch the writer lock at all, and only the cheap HET insert
    /// runs under exclusive access (epoch bump + fresh snapshot;
    /// in-flight readers finish on their epoch). The entry's maintenance
    /// accounting absorbs the exposed error and reports — once per
    /// crossing — when its policy declares a rebuild due. Returns `None`
    /// when `name` is not registered.
    pub fn record_feedback(
        &self,
        name: &str,
        expr: &PathExpr,
        actual: u64,
        base_cardinality: Option<u64>,
    ) -> Option<CatalogFeedback> {
        let entry = self.entry(name)?;
        let published = entry.published();
        let estimated = published.estimate(expr);
        // Classified against the *published* names so the unsupported
        // shortcut stays lock-free; `apply_feedback` re-derives the shape
        // under the writer lock against the live synopsis' names, so the
        // recorded keys always match the state being mutated.
        if xseed_core::het::feedback::classify(published.names(), expr)
            == FeedbackOutcome::Unsupported
        {
            let report = FeedbackReport {
                outcome: FeedbackOutcome::Unsupported,
                estimated,
                actual,
                error: (estimated - actual as f64).abs(),
            };
            entry.maintenance().note(&report);
            return Some(CatalogFeedback {
                report,
                epoch: published.epoch(),
                rebuild_due: false,
            });
        }
        let (report, snapshot) = self.update_entry(name, &entry, |synopsis| {
            synopsis.apply_feedback(expr, estimated, actual, base_cardinality)
        });
        let rebuild_due = entry.maintenance().note(&report);
        Some(CatalogFeedback {
            report,
            epoch: snapshot.epoch(),
            rebuild_due,
        })
    }

    /// Applies a whole batch of feedback observations under **one** entry
    /// update: any number of applied items costs a single snapshot
    /// publication (readers see the batch atomically, never a partially
    /// applied prefix), and the maintenance policy is evaluated once with
    /// the batch's whole error mass absorbed. Unlike
    /// [`Catalog::record_feedback`], each item's prior estimate reflects
    /// the items applied before it (sequential refinement within the
    /// batch). Returns `None` when `name` is not registered.
    pub fn record_feedback_batch(
        &self,
        name: &str,
        items: &[FeedbackItem],
    ) -> Option<CatalogFeedbackBatch> {
        let entry = self.entry(name)?;
        let (reports, snapshot) = self.update_entry(name, &entry, |synopsis| {
            synopsis.record_feedback_batch_reports(
                items
                    .iter()
                    .map(|item| (item.query.expr(), item.actual, item.base)),
            )
        });
        let rebuild_due = {
            let mut m = entry.maintenance();
            let mut due = false;
            // Every report must be accounted (no short-circuiting);
            // `note` marks the pending flag on the first crossing, so
            // later items cannot re-trigger within the batch.
            for report in &reports {
                due |= m.note(report);
            }
            due
        };
        Some(CatalogFeedbackBatch {
            reports,
            epoch: snapshot.epoch(),
            rebuild_due,
        })
    }

    /// Sets the maintenance policy of `name`; `false` when unregistered.
    /// Takes effect for the next feedback — an already-pending rebuild
    /// trigger is unaffected.
    pub fn set_maintenance_policy(&self, name: &str, policy: MaintenancePolicy) -> bool {
        match self.entry(name) {
            Some(entry) => {
                entry.maintenance().policy = policy;
                true
            }
            None => false,
        }
    }

    /// Sets the candidate strategy automatic rebuilds of `name` use;
    /// `false` when unregistered.
    pub fn set_rebuild_strategy(
        &self,
        name: &str,
        strategy: impl CandidateStrategy + Send + Sync + 'static,
    ) -> bool {
        match self.entry(name) {
            Some(entry) => {
                entry.maintenance().strategy = Arc::new(strategy);
                true
            }
            None => false,
        }
    }

    /// The retained source document of `name`, if any.
    pub fn retained_document(&self, name: &str) -> Option<Arc<Document>> {
        self.entry(name)?.maintenance().document.clone()
    }

    /// Writes the named entry's full state — kernel, HET, config, epoch,
    /// and (when retained) the source document as XML — to `path` as a
    /// crash-safe snapshot (temp file + fsync + atomic rename; see
    /// [`crate::persist`]). Returns the snapshot size in bytes.
    ///
    /// The maintenance lock and the synopsis lock are taken one after the
    /// other, never together, matching the ordering discipline of the
    /// rest of the catalog.
    pub fn save_snapshot(&self, name: &str, path: &std::path::Path) -> Result<u64, SnapshotError> {
        let entry = self
            .entry(name)
            .ok_or_else(|| SnapshotError::UnknownDocument(name.to_string()))?;
        let document_xml = {
            let maintenance = entry.maintenance();
            maintenance
                .document
                .as_ref()
                .map(|doc| xmlkit::writer::to_string(doc))
        };
        let bytes = {
            let synopsis = entry
                .synopsis
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            xseed_core::persist::encode_snapshot(
                synopsis.kernel(),
                synopsis.het(),
                synopsis.config(),
                synopsis.epoch(),
                document_xml.as_deref(),
            )
        };
        crate::persist::write_snapshot_file(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Reads a snapshot file and registers it under `name` (see
    /// [`Catalog::install_snapshot`]). Returns the published snapshot and
    /// whether a spilled document was restored into retention.
    pub fn load_snapshot(
        &self,
        name: &str,
        path: &std::path::Path,
        max_documents: Option<usize>,
    ) -> Result<(SynopsisSnapshot, bool), SnapshotError> {
        let bytes = std::fs::read(path)?;
        self.install_snapshot(name, &bytes, max_documents)
    }

    /// Decodes snapshot bytes and registers the reassembled synopsis under
    /// `name`, restoring its saved epoch exactly (a fresh name) or
    /// advancing past the name's published history (a re-load) — epochs
    /// never regress either way. A spilled document goes back into
    /// retention, so maintenance resumes where it left off; the policy
    /// restarts as [`MaintenancePolicy::Manual`] (policies are a serving
    /// decision, not snapshot state).
    pub fn install_snapshot(
        &self,
        name: &str,
        bytes: &[u8],
        max_documents: Option<usize>,
    ) -> Result<(SynopsisSnapshot, bool), SnapshotError> {
        let parts = xseed_core::persist::decode_snapshot(bytes)?;
        let document = match &parts.document_xml {
            Some(xml) => Some(Arc::new(
                Document::parse_str(xml).map_err(SnapshotError::Document)?,
            )),
            None => None,
        };
        let retained = document.is_some();
        let synopsis =
            XseedSynopsis::from_parts(parts.kernel, parts.het, parts.config, parts.epoch);
        let snapshot = self
            .insert_full(
                name,
                synopsis,
                max_documents,
                document,
                MaintenancePolicy::Manual,
            )
            .ok_or(SnapshotError::CatalogFull)?;
        Ok((snapshot, retained))
    }

    /// Retains (or replaces) the source document of an already-registered
    /// entry; `false` when unregistered. `doc` must be the document the
    /// synopsis summarizes.
    pub fn retain_document(&self, name: &str, doc: Arc<Document>) -> bool {
        match self.entry(name) {
            Some(entry) => {
                entry.maintenance().document = Some(doc);
                true
            }
            None => false,
        }
    }

    /// Drops the retained document of `name` (reclaiming its memory;
    /// automatic rebuilds disarm until a document is retained again).
    /// Returns `true` when a document was actually dropped.
    pub fn release_document(&self, name: &str) -> bool {
        match self.entry(name) {
            Some(entry) => entry.maintenance().document.take().is_some(),
            None => false,
        }
    }

    /// Removes an entry; returns `true` if it existed. Snapshots already
    /// handed out keep working — removal only unpublishes the name. The
    /// ledger keeps the name's publication history, so a future
    /// re-registration still publishes a strictly later epoch.
    pub fn remove(&self, name: &str) -> bool {
        self.entries
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
            .remove(name)
            .is_some()
    }

    /// Number of registered documents.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// Returns `true` when no documents are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-entry summaries, sorted by name. Taking each entry's synopsis
    /// lock briefly (for the byte sizes) may wait behind an in-progress
    /// update of that entry, but never blocks the read path.
    pub fn info(&self) -> Vec<DocumentInfo> {
        let entries: Vec<(String, Arc<Entry>)> = self
            .entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .iter()
            .map(|(name, e)| (name.clone(), e.clone()))
            .collect();
        let mut out: Vec<DocumentInfo> = entries
            .into_iter()
            .map(|(name, e)| {
                let snapshot = e.published();
                let size_bytes = e
                    .synopsis
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .size_bytes();
                let compiled = snapshot.compiled_cache_stats();
                let m = e.maintenance();
                DocumentInfo {
                    name,
                    epoch: snapshot.epoch(),
                    vertices: snapshot.frozen().vertex_count(),
                    elements: snapshot.frozen().element_count(),
                    size_bytes,
                    compiled_hits: compiled.hits,
                    compiled_misses: compiled.misses,
                    retained: m.document.is_some(),
                    policy: m.policy,
                    error_mass: m.error_mass,
                    feedback_applied: m.feedback_applied,
                    feedback_ignored: m.feedback_ignored,
                    rebuilds: m.rebuilds,
                    q_error: m.q_error.clone(),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpathkit::parse;

    fn sample_catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        catalog
    }

    #[test]
    fn insert_snapshot_roundtrip() {
        let catalog = sample_catalog();
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
        let snap = catalog.snapshot("fig2").unwrap();
        assert_eq!(snap.epoch(), 0);
        assert!((snap.estimate(&parse("/a/c/s").unwrap()) - 5.0).abs() < 1e-9);
        assert!(catalog.snapshot("missing").is_none());
    }

    #[test]
    fn update_publishes_new_epoch_and_preserves_old_snapshots() {
        let catalog = sample_catalog();
        let old = catalog.snapshot("fig2").unwrap();

        let (_, fresh) = catalog
            .update("fig2", |syn| {
                let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
                syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
            })
            .unwrap();

        assert!(fresh.epoch() > old.epoch());
        let q = parse("/a/zzz").unwrap();
        assert_eq!(old.estimate(&q), 0.0);
        assert!((fresh.estimate(&q) - 1.0).abs() < 1e-9);
        // The catalog now serves the fresh snapshot.
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), fresh.epoch());
        assert!(catalog.update("missing", |_| ()).is_none());
    }

    #[test]
    fn replacing_an_entry_never_regresses_its_epoch() {
        let catalog = sample_catalog();
        // Advance fig2 to epoch 3 through updates.
        for _ in 0..3 {
            let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        }
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), 3);
        // Re-LOADing the name with a brand-new synopsis (epoch 0 on its
        // own) must publish a *later* epoch, not reset to 0.
        let replaced = catalog
            .load_xml("fig2", "<a><b/></a>", XseedConfig::default())
            .unwrap();
        assert_eq!(replaced.epoch(), 4);
        let snap = catalog.snapshot("fig2").unwrap();
        assert_eq!(snap.epoch(), 4);
        // And it really is the new document.
        assert!((snap.estimate(&parse("/a/b").unwrap()) - 1.0).abs() < 1e-9);
        assert_eq!(snap.estimate(&parse("/a/c/s").unwrap()), 0.0);
    }

    #[test]
    fn remove_then_reinsert_still_advances_epoch() {
        let catalog = sample_catalog();
        let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), 2);
        assert!(catalog.remove("fig2"));
        assert!(catalog.snapshot("fig2").is_none());
        // Re-registering the name publishes a strictly later epoch even
        // though the entry was gone in between.
        let snap = catalog
            .load_xml("fig2", "<a><b/></a>", XseedConfig::default())
            .unwrap();
        assert_eq!(snap.epoch(), 3);
    }

    #[test]
    fn rebuild_het_bumps_epoch_and_keeps_old_snapshots_serving() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document(
            "fig4",
            &doc,
            XseedConfig::default().with_bsel_threshold(0.99),
        );
        let old = catalog.snapshot("fig4").unwrap();
        let q = parse("/a/b/d/e").unwrap();
        let kernel_only = old.estimate(&q);

        let (stats, fresh) = catalog.rebuild_het("fig4", &doc).unwrap();
        assert!(stats.simple_entries > 0);
        assert!(fresh.epoch() > old.epoch());
        assert!(fresh.het().is_some());
        // In-flight readers of the old snapshot are undisturbed; the new
        // snapshot answers the simple path exactly (20 = actual |/a/b/d/e|).
        assert_eq!(old.estimate(&q).to_bits(), kernel_only.to_bits());
        assert!((fresh.estimate(&q) - 20.0).abs() < 1e-9);
        assert_eq!(catalog.snapshot("fig4").unwrap().epoch(), fresh.epoch());
        assert!(catalog.rebuild_het("missing", &doc).is_none());
    }

    #[test]
    fn feedback_updates_het_and_accumulates_error_mass() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::Manual,
        );
        assert!(catalog.retained_document("fig4").is_some());
        let expr = parse("/a/b/d/e").unwrap();
        let before = catalog.snapshot("fig4").unwrap();

        let fb = catalog.record_feedback("fig4", &expr, 20, None).unwrap();
        assert_eq!(fb.report.outcome, xseed_core::FeedbackOutcome::SimplePath);
        assert!(fb.report.error > 1e-6);
        assert!(!fb.rebuild_due, "manual policy never triggers");
        assert!(fb.epoch > before.epoch());
        // The published snapshot answers the fed-back query exactly; the
        // pre-feedback snapshot is untouched.
        let after = catalog.snapshot("fig4").unwrap();
        assert!((after.estimate(&expr) - 20.0).abs() < 1e-9);
        assert!((before.estimate(&expr) - fb.report.estimated).abs() < 1e-12);

        let info = &catalog.info()[0];
        assert!(info.retained);
        assert_eq!(info.policy, MaintenancePolicy::Manual);
        assert_eq!(info.feedback_applied, 1);
        assert_eq!(info.feedback_ignored, 0);
        assert!((info.error_mass - fb.report.error).abs() < 1e-12);

        // Unsupported feedback neither bumps the epoch nor adds mass.
        let ignored = catalog
            .record_feedback("fig4", &parse("//e//f").unwrap(), 3, None)
            .unwrap();
        assert_eq!(
            ignored.report.outcome,
            xseed_core::FeedbackOutcome::Unsupported
        );
        assert_eq!(ignored.epoch, fb.epoch);
        let info = &catalog.info()[0];
        assert_eq!(info.feedback_ignored, 1);
        assert!((info.error_mass - fb.report.error).abs() < 1e-12);
        assert!(catalog.record_feedback("missing", &expr, 1, None).is_none());
    }

    #[test]
    fn error_mass_policy_reports_due_once_and_rebuild_resets() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        let expr = parse("/a/b/d/e").unwrap();
        let fb = catalog.record_feedback("fig4", &expr, 20, None).unwrap();
        assert!(fb.report.error >= 1.0, "figure 4 drift crosses the bound");
        assert!(fb.rebuild_due, "crossing the bound reports due");
        // Further feedback does not re-report while the rebuild is pending.
        let again = catalog
            .record_feedback("fig4", &parse("/a/c/d/f").unwrap(), 10, None)
            .unwrap();
        assert!(!again.rebuild_due);

        let epoch_before = catalog.snapshot("fig4").unwrap().epoch();
        let (stats, fresh) = catalog.rebuild_het_retained("fig4").unwrap();
        assert!(stats.simple_entries > 0);
        assert!(fresh.epoch() > epoch_before);
        // The rebuild answers the fed-back query exactly and resets drift.
        assert!((fresh.estimate(&expr) - 20.0).abs() < 1e-9);
        let info = &catalog.info()[0];
        assert_eq!(info.rebuilds, 1);
        assert_eq!(info.error_mass, 0.0);
        // The policy re-arms: new drift can trigger again.
        let fb = catalog.record_feedback("fig4", &expr, 1, None).unwrap();
        assert!(fb.rebuild_due, "post-rebuild drift re-triggers");
    }

    #[test]
    fn feedback_count_policy_and_retention_controls() {
        let catalog = sample_catalog();
        assert!(catalog.retained_document("fig2").is_none());
        assert!(catalog.set_maintenance_policy("fig2", MaintenancePolicy::FeedbackCount(2)));
        let expr = parse("/a/c/s").unwrap();
        // Without a retained document the schedule cannot arm.
        let fb = catalog.record_feedback("fig2", &expr, 9, None).unwrap();
        let fb2 = catalog.record_feedback("fig2", &expr, 9, None).unwrap();
        assert!(!fb.rebuild_due && !fb2.rebuild_due);
        assert_eq!(
            catalog.rebuild_het_retained("fig2").err(),
            Some(RebuildError::NotRetained)
        );
        assert_eq!(
            catalog.rebuild_het_retained("missing").err(),
            Some(RebuildError::UnknownDocument)
        );

        // Retain late: the schedule arms on the next applied feedback.
        let doc = xmlkit::Document::parse_str(xmlkit::samples::FIGURE2_XML).unwrap();
        assert!(catalog.retain_document("fig2", Arc::new(doc)));
        let fb = catalog.record_feedback("fig2", &expr, 9, None).unwrap();
        assert!(fb.rebuild_due, "count schedule crossed with retention");
        assert!(catalog.rebuild_het_retained("fig2").is_ok());
        // Releasing the document disarms future triggers.
        assert!(catalog.release_document("fig2"));
        assert!(!catalog.release_document("fig2"));
        let fb = catalog.record_feedback("fig2", &expr, 9, None).unwrap();
        let fb2 = catalog.record_feedback("fig2", &expr, 9, None).unwrap();
        assert!(!fb.rebuild_due && !fb2.rebuild_due);
        assert!(!catalog.set_maintenance_policy("missing", MaintenancePolicy::Manual));
        assert!(!catalog.retain_document(
            "missing",
            Arc::new(xmlkit::Document::parse_str("<a/>").unwrap())
        ));
    }

    #[test]
    fn feedback_batch_applies_under_one_epoch() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        let epoch_before = catalog.snapshot("fig4").unwrap().epoch();
        let items: Vec<crate::batch::FeedbackItem> = [
            ("/a/b/d/e", 20u64, None),
            ("/a/c/d/f", 10, None),
            ("//e//f", 1, None), // unsupported, ignored
        ]
        .iter()
        .map(|(q, actual, base)| crate::batch::FeedbackItem {
            query: Arc::new(xpathkit::QueryPlan::parse(q).unwrap()),
            actual: *actual,
            base: *base,
        })
        .collect();
        let batch = catalog.record_feedback_batch("fig4", &items).unwrap();
        assert_eq!(batch.reports.len(), 3);
        assert!(batch.epoch > epoch_before);
        assert_eq!(
            catalog.snapshot("fig4").unwrap().epoch(),
            batch.epoch,
            "whole batch publishes exactly one snapshot"
        );
        assert!(batch.rebuild_due, "batch error mass crossed the bound");
        let info = &catalog.info()[0];
        assert_eq!(info.feedback_applied, 2);
        assert_eq!(info.feedback_ignored, 1);
        let snap = catalog.snapshot("fig4").unwrap();
        assert!((snap.estimate(&parse("/a/b/d/e").unwrap()) - 20.0).abs() < 1e-9);
        assert!((snap.estimate(&parse("/a/c/d/f").unwrap()) - 10.0).abs() < 1e-9);
        assert!(catalog.record_feedback_batch("missing", &items).is_none());
    }

    #[test]
    fn auto_rebuild_is_superseded_by_a_concurrent_reload() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        let fb = catalog
            .record_feedback("fig4", &parse("/a/b/d/e").unwrap(), 20, None)
            .unwrap();
        assert!(fb.rebuild_due);
        // A re-LOAD replaces the entry before the queued rebuild runs:
        // the fresh entry owes nothing, so the auto path must refuse
        // (while the explicit operator path still works).
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default(),
            RetentionPolicy::Retain,
            MaintenancePolicy::ErrorMassBound(1.0),
        );
        assert_eq!(
            catalog.rebuild_het_retained_auto("fig4").err(),
            Some(RebuildError::Superseded)
        );
        assert_eq!(catalog.info()[0].rebuilds, 0, "fresh entry untouched");
        assert!(catalog.rebuild_het_retained("fig4").is_ok());
    }

    #[test]
    fn load_document_arc_retains_without_cloning() {
        let catalog = Catalog::new();
        let doc = Arc::new(xmlkit::samples::figure4_document());
        catalog.load_document_arc(
            "fig4",
            doc.clone(),
            XseedConfig::default(),
            MaintenancePolicy::Manual,
        );
        let retained = catalog.retained_document("fig4").unwrap();
        assert!(Arc::ptr_eq(&doc, &retained), "the Arc itself is retained");
        assert!(catalog.rebuild_het_retained("fig4").is_ok());
    }

    #[test]
    fn rebuild_settlement_preserves_racing_drift() {
        // Drift noted between a rebuild's start and its settlement must
        // survive: note_rebuilt subtracts what the rebuild consumed
        // instead of zeroing.
        let mut m = MaintenanceState::new(None, MaintenancePolicy::Manual);
        let report = |error: f64| FeedbackReport {
            outcome: xseed_core::FeedbackOutcome::SimplePath,
            estimated: 0.0,
            actual: 0,
            error,
        };
        m.note(&report(10.0));
        let (consumed_mass, consumed_feedbacks) = (m.error_mass, m.feedback_since_rebuild);
        // A feedback races in while the rebuild runs.
        m.note(&report(3.0));
        m.note_rebuilt(consumed_mass, consumed_feedbacks);
        assert!((m.error_mass - 3.0).abs() < 1e-12, "racing drift survives");
        assert_eq!(m.feedback_since_rebuild, 1);
        assert_eq!(m.rebuilds, 1);
    }

    #[test]
    fn rebuild_strategy_is_configurable() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document_with(
            "fig4",
            &doc,
            XseedConfig::default().with_bsel_threshold(0.99),
            RetentionPolicy::Retain,
            MaintenancePolicy::Manual,
        );
        assert!(catalog.set_rebuild_strategy("fig4", xseed_core::TopKErrorStrategy { k: 1 }));
        let (stats, _) = catalog.rebuild_het_retained("fig4").unwrap();
        assert!(stats.candidate_nodes <= 1, "strategy bounds candidates");
        assert!(!catalog.set_rebuild_strategy("missing", xseed_core::BselThresholdStrategy));
    }

    #[test]
    fn info_reports_entries() {
        let catalog = sample_catalog();
        catalog
            .load_xml("tiny", "<r><x/></r>", XseedConfig::default())
            .unwrap();
        let info = catalog.info();
        assert_eq!(info.len(), 2);
        assert_eq!(info[0].name, "fig2");
        assert_eq!(info[1].name, "tiny");
        assert!(info[0].vertices > 0);
        assert!(info[0].elements > 0);
        assert!(info[0].size_bytes > 0);
        assert!(catalog.remove("tiny"));
        assert!(!catalog.remove("tiny"));
        assert_eq!(catalog.len(), 1);
    }
}
