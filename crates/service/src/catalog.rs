//! The synopsis catalog: many named documents, epoch-versioned snapshots.
//!
//! A [`Catalog`] is the shared registry an estimation service reads from.
//! The name map itself is only ever held briefly (insert/lookup/remove of
//! `Arc`'d entries); each entry carries its own locks, so work on one
//! document never stalls another:
//!
//! * the **read path** ([`Catalog::snapshot`]) clones the entry's
//!   published [`SynopsisSnapshot`] under a brief per-entry read lock and
//!   then never synchronizes again — estimation itself is lock-free;
//! * the **write path** ([`Catalog::update`]) runs the mutation and the
//!   snapshot rebuild (including the kernel re-freeze) under that entry's
//!   mutex only, then swaps the published snapshot in one brief write.
//!   In-flight estimates holding the previous snapshot simply finish
//!   against the epoch they started with.
//!
//! Epochs never regress for a name: re-registering a document under an
//! existing name ([`Catalog::insert`]) advances the new synopsis past the
//! replaced entry's epoch — and removed names remember their last epoch —
//! so `(name, epoch)` remains a valid staleness key across swaps,
//! including remove + re-insert.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use xmlkit::tree::Document;
use xseed_core::{SynopsisSnapshot, XseedConfig, XseedSynopsis};

struct Entry {
    /// The build/update side, locked only by writers.
    synopsis: Mutex<XseedSynopsis>,
    /// The read side: swapped atomically when an update publishes.
    published: RwLock<SynopsisSnapshot>,
}

impl Entry {
    fn published(&self) -> SynopsisSnapshot {
        self.published
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }
}

/// A concurrent registry of named synopses. See the module docs.
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    /// Per-name publication ledger: the highest epoch ever published for
    /// each name. Every publish (insert *or* update) claims its epoch
    /// through this one lock, so two racing publishes — even an update
    /// racing an insert that detaches its entry — can never hand out the
    /// same `(name, epoch)` for different synopsis states, and the
    /// staleness key survives remove + re-insert.
    ledger: Mutex<HashMap<String, u64>>,
}

/// Summary of one catalog entry, as reported by [`Catalog::info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentInfo {
    /// The entry's name.
    pub name: String,
    /// Epoch of the published snapshot.
    pub epoch: u64,
    /// Synopsis-graph vertices in the published snapshot.
    pub vertices: usize,
    /// Elements of the summarized document(s).
    pub elements: u64,
    /// Total synopsis footprint (kernel + resident HET) in bytes.
    pub size_bytes: usize,
    /// Hits of the published snapshot's compiled-query cache.
    pub compiled_hits: u64,
    /// Misses (compilations) of the published snapshot's compiled-query
    /// cache.
    pub compiled_misses: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    fn entry(&self, name: &str) -> Option<Arc<Entry>> {
        self.entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .get(name)
            .cloned()
    }

    /// Claims a publication epoch for `name`: raises the synopsis past
    /// every epoch previously published under the name (when the synopsis
    /// state changed or lags the ledger) and records the claim. The first
    /// publication of a fresh name keeps the synopsis' own epoch.
    fn claim_epoch(&self, name: &str, synopsis: &mut XseedSynopsis, state_changed: bool) {
        let mut ledger = self
            .ledger
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(&last) = ledger.get(name) {
            if state_changed || synopsis.epoch() < last {
                synopsis.advance_epoch(last + 1);
            }
        }
        ledger.insert(name.to_string(), synopsis.epoch());
    }

    /// Registers (or replaces) a synopsis under `name` and publishes its
    /// snapshot, which is also returned. When replacing, the new synopsis
    /// is advanced past the replaced entry's epoch so observers keyed on
    /// `(name, epoch)` see the swap. The initial freeze happens outside
    /// the name-map lock.
    pub fn insert(&self, name: &str, synopsis: XseedSynopsis) -> SynopsisSnapshot {
        self.insert_with_cap(name, synopsis, None)
            .expect("uncapped insert cannot be rejected")
    }

    /// Like [`Catalog::insert`], but refuses to *create* a new entry when
    /// the catalog already holds `max_documents` (replacing an existing
    /// name always succeeds). The capacity check and the map insert
    /// happen under one write lock, so concurrent sessions cannot race
    /// past the cap. Returns `None` when rejected.
    pub fn insert_capped(
        &self,
        name: &str,
        synopsis: XseedSynopsis,
        max_documents: usize,
    ) -> Option<SynopsisSnapshot> {
        self.insert_with_cap(name, synopsis, Some(max_documents))
    }

    fn insert_with_cap(
        &self,
        name: &str,
        mut synopsis: XseedSynopsis,
        max_documents: Option<usize>,
    ) -> Option<SynopsisSnapshot> {
        // Claiming through the ledger makes the epoch unique for the name
        // even against racing publishes; the freeze inside `snapshot()`
        // then runs outside the name-map lock. If two inserts race, the
        // last map write wins the published slot (both epochs stay
        // distinct, so stale keys never collide). A claim for an insert
        // the cap then rejects is harmless: the ledger only pushes later
        // epochs upward.
        self.claim_epoch(name, &mut synopsis, true);
        let snapshot = synopsis.snapshot();
        let mut entries = self
            .entries
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(max) = max_documents {
            if !entries.contains_key(name) && entries.len() >= max {
                return None;
            }
        }
        entries.insert(
            name.to_string(),
            Arc::new(Entry {
                synopsis: Mutex::new(synopsis),
                published: RwLock::new(snapshot.clone()),
            }),
        );
        Some(snapshot)
    }

    /// Builds a kernel-only synopsis from a document and registers it.
    pub fn load_document(
        &self,
        name: &str,
        doc: &Document,
        config: XseedConfig,
    ) -> SynopsisSnapshot {
        self.insert(name, XseedSynopsis::build(doc, config))
    }

    /// SAX-parses XML text, builds a synopsis, and registers it.
    pub fn load_xml(
        &self,
        name: &str,
        xml: &str,
        config: XseedConfig,
    ) -> Result<SynopsisSnapshot, xmlkit::Error> {
        let synopsis = XseedSynopsis::build_from_xml(xml, config)?;
        Ok(self.insert(name, synopsis))
    }

    /// The published snapshot of `name`, if registered. This is the read
    /// path: the returned snapshot is self-contained and lock-free.
    pub fn snapshot(&self, name: &str) -> Option<SynopsisSnapshot> {
        self.entry(name).map(|e| e.published())
    }

    /// Applies `mutate` to the synopsis registered under `name`, then
    /// rebuilds and publishes a fresh snapshot (bumping the epoch if the
    /// mutation invalidated estimate state). Returns the mutation's result
    /// and the newly published snapshot. Only this entry's locks are
    /// taken — readers and writers of other documents are unaffected, and
    /// in-flight estimates holding the previous snapshot finish
    /// undisturbed. If `name` is concurrently replaced via
    /// [`Catalog::insert`], the replacement wins the published slot.
    pub fn update<R>(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut XseedSynopsis) -> R,
    ) -> Option<(R, SynopsisSnapshot)> {
        let entry = self.entry(name)?;
        let mut synopsis = entry
            .synopsis
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let epoch_before = synopsis.epoch();
        let result = mutate(&mut synopsis);
        let state_changed = synopsis.epoch() != epoch_before;
        // Claim the published epoch through the ledger so a racing
        // publish (e.g. an insert replacing this name) can never share it.
        self.claim_epoch(name, &mut synopsis, state_changed);
        // Rebuild (re-freeze) and publish while still holding this
        // entry's mutex: racing updates therefore publish in mutation
        // order, and a slower earlier update can never overwrite a newer
        // published snapshot. The write lock itself is held only for the
        // swap.
        let snapshot = synopsis.snapshot();
        *entry
            .published
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = snapshot.clone();
        drop(synopsis);
        Some((result, snapshot))
    }

    /// Rebuilds the hyper-edge table of `name` from `doc`'s exact
    /// statistics using the streaming builder and republishes: the epoch
    /// bumps (the HET swap invalidates estimate state) and a fresh
    /// snapshot is installed, while readers keep estimating from the
    /// previously published snapshot for the whole (potentially long)
    /// build — the construction runs under this entry's writer mutex
    /// only, and the published slot's write lock is held just for the
    /// final swap. `doc` must be the document the synopsis summarizes.
    /// Returns the build statistics and the new snapshot, or `None` when
    /// the name is not registered.
    pub fn rebuild_het(
        &self,
        name: &str,
        doc: &Document,
    ) -> Option<(xseed_core::HetBuildStats, SynopsisSnapshot)> {
        self.update(name, |synopsis| synopsis.rebuild_het(doc))
    }

    /// Removes an entry; returns `true` if it existed. Snapshots already
    /// handed out keep working — removal only unpublishes the name. The
    /// ledger keeps the name's publication history, so a future
    /// re-registration still publishes a strictly later epoch.
    pub fn remove(&self, name: &str) -> bool {
        self.entries
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
            .remove(name)
            .is_some()
    }

    /// Number of registered documents.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// Returns `true` when no documents are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-entry summaries, sorted by name. Taking each entry's synopsis
    /// lock briefly (for the byte sizes) may wait behind an in-progress
    /// update of that entry, but never blocks the read path.
    pub fn info(&self) -> Vec<DocumentInfo> {
        let entries: Vec<(String, Arc<Entry>)> = self
            .entries
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .iter()
            .map(|(name, e)| (name.clone(), e.clone()))
            .collect();
        let mut out: Vec<DocumentInfo> = entries
            .into_iter()
            .map(|(name, e)| {
                let snapshot = e.published();
                let size_bytes = e
                    .synopsis
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .size_bytes();
                let compiled = snapshot.compiled_cache_stats();
                DocumentInfo {
                    name,
                    epoch: snapshot.epoch(),
                    vertices: snapshot.frozen().vertex_count(),
                    elements: snapshot.frozen().element_count(),
                    size_bytes,
                    compiled_hits: compiled.hits,
                    compiled_misses: compiled.misses,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpathkit::parse;

    fn sample_catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .load_xml("fig2", xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        catalog
    }

    #[test]
    fn insert_snapshot_roundtrip() {
        let catalog = sample_catalog();
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
        let snap = catalog.snapshot("fig2").unwrap();
        assert_eq!(snap.epoch(), 0);
        assert!((snap.estimate(&parse("/a/c/s").unwrap()) - 5.0).abs() < 1e-9);
        assert!(catalog.snapshot("missing").is_none());
    }

    #[test]
    fn update_publishes_new_epoch_and_preserves_old_snapshots() {
        let catalog = sample_catalog();
        let old = catalog.snapshot("fig2").unwrap();

        let (_, fresh) = catalog
            .update("fig2", |syn| {
                let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
                syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
            })
            .unwrap();

        assert!(fresh.epoch() > old.epoch());
        let q = parse("/a/zzz").unwrap();
        assert_eq!(old.estimate(&q), 0.0);
        assert!((fresh.estimate(&q) - 1.0).abs() < 1e-9);
        // The catalog now serves the fresh snapshot.
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), fresh.epoch());
        assert!(catalog.update("missing", |_| ()).is_none());
    }

    #[test]
    fn replacing_an_entry_never_regresses_its_epoch() {
        let catalog = sample_catalog();
        // Advance fig2 to epoch 3 through updates.
        for _ in 0..3 {
            let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        }
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), 3);
        // Re-LOADing the name with a brand-new synopsis (epoch 0 on its
        // own) must publish a *later* epoch, not reset to 0.
        let replaced = catalog
            .load_xml("fig2", "<a><b/></a>", XseedConfig::default())
            .unwrap();
        assert_eq!(replaced.epoch(), 4);
        let snap = catalog.snapshot("fig2").unwrap();
        assert_eq!(snap.epoch(), 4);
        // And it really is the new document.
        assert!((snap.estimate(&parse("/a/b").unwrap()) - 1.0).abs() < 1e-9);
        assert_eq!(snap.estimate(&parse("/a/c/s").unwrap()), 0.0);
    }

    #[test]
    fn remove_then_reinsert_still_advances_epoch() {
        let catalog = sample_catalog();
        let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        let _ = catalog.update("fig2", |syn| syn.config_mut().card_threshold = 0.0);
        assert_eq!(catalog.snapshot("fig2").unwrap().epoch(), 2);
        assert!(catalog.remove("fig2"));
        assert!(catalog.snapshot("fig2").is_none());
        // Re-registering the name publishes a strictly later epoch even
        // though the entry was gone in between.
        let snap = catalog
            .load_xml("fig2", "<a><b/></a>", XseedConfig::default())
            .unwrap();
        assert_eq!(snap.epoch(), 3);
    }

    #[test]
    fn rebuild_het_bumps_epoch_and_keeps_old_snapshots_serving() {
        let catalog = Catalog::new();
        let doc = xmlkit::samples::figure4_document();
        catalog.load_document(
            "fig4",
            &doc,
            XseedConfig::default().with_bsel_threshold(0.99),
        );
        let old = catalog.snapshot("fig4").unwrap();
        let q = parse("/a/b/d/e").unwrap();
        let kernel_only = old.estimate(&q);

        let (stats, fresh) = catalog.rebuild_het("fig4", &doc).unwrap();
        assert!(stats.simple_entries > 0);
        assert!(fresh.epoch() > old.epoch());
        assert!(fresh.het().is_some());
        // In-flight readers of the old snapshot are undisturbed; the new
        // snapshot answers the simple path exactly (20 = actual |/a/b/d/e|).
        assert_eq!(old.estimate(&q).to_bits(), kernel_only.to_bits());
        assert!((fresh.estimate(&q) - 20.0).abs() < 1e-9);
        assert_eq!(catalog.snapshot("fig4").unwrap().epoch(), fresh.epoch());
        assert!(catalog.rebuild_het("missing", &doc).is_none());
    }

    #[test]
    fn info_reports_entries() {
        let catalog = sample_catalog();
        catalog
            .load_xml("tiny", "<r><x/></r>", XseedConfig::default())
            .unwrap();
        let info = catalog.info();
        assert_eq!(info.len(), 2);
        assert_eq!(info[0].name, "fig2");
        assert_eq!(info[1].name, "tiny");
        assert!(info[0].vertices > 0);
        assert!(info[0].elements > 0);
        assert!(info[0].size_bytes > 0);
        assert!(catalog.remove("tiny"));
        assert!(!catalog.remove("tiny"));
        assert_eq!(catalog.len(), 1);
    }
}
