//! A fixed-size event trace ring recording the service's rare state
//! changes — loads, saves, rebuilds, quarantines, shed transitions, and
//! pause fences — so an operator can replay the last N events after an
//! incident with `TRACE [n]`.
//!
//! Writers reserve a slot with one atomic `fetch_add` on the head (the
//! event's global sequence number), then store the event into the slot
//! `seq % capacity`. Slots are tiny mutexes rather than unsafe cells:
//! the crate forbids `unsafe`, the traced events are state *transitions*
//! (a handful per second at the very worst), and two writers only touch
//! the same slot after a full lap of the ring — so the lock is
//! uncontended in practice and the reservation itself is lock-free,
//! which is what keeps tracing off the estimate hot path entirely.
//! Readers walk the ring newest-first and skip any slot a lapped writer
//! is mid-update on, trading a torn read for never blocking a writer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The kind of state change a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A document snapshot entered the catalog (LOAD, `file:` restore,
    /// or warm start).
    Load,
    /// A snapshot was persisted to disk.
    Save,
    /// The maintenance thread rebuilt a document's HET.
    Rebuild,
    /// A corrupt snapshot file was quarantined during warm start.
    Quarantine,
    /// The service began shedding load (first rejection of a burst).
    ShedOn,
    /// The service stopped shedding (first admission after rejections).
    ShedOff,
    /// A connection's token bucket emptied: its requests are being shed
    /// with `OVERLOADED rate=…` (recorded once per shed episode, not per
    /// request — a flood costs one ring slot, like [`TraceKind::ShedOn`]).
    RateLimitOn,
    /// The connection's bucket refilled enough to admit again.
    RateLimitOff,
    /// A worker or the maintenance thread reached a pause fence.
    Pause,
    /// A paused thread resumed.
    Resume,
}

impl TraceKind {
    /// The stable wire label (the `event=` value in `TRACE` output).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Load => "load",
            TraceKind::Save => "save",
            TraceKind::Rebuild => "rebuild",
            TraceKind::Quarantine => "quarantine",
            TraceKind::ShedOn => "shed_on",
            TraceKind::ShedOff => "shed_off",
            TraceKind::RateLimitOn => "rate_limit_on",
            TraceKind::RateLimitOff => "rate_limit_off",
            TraceKind::Pause => "pause",
            TraceKind::Resume => "resume",
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global sequence number (monotonic from 0 across the ring's life).
    pub seq: u64,
    /// Milliseconds since the service started, from a monotonic clock.
    pub at_ms: u64,
    /// What happened.
    pub kind: TraceKind,
    /// The subject — a document name, `worker-N`, `maintenance`,
    /// `connections`, or `conn-N` (a TCP session's token, for rate-limit
    /// transitions).
    pub subject: String,
}

struct Slot {
    event: Mutex<Option<TraceEvent>>,
}

/// The fixed-size ring. See the module docs for the concurrency story.
pub struct TraceRing {
    start: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    /// Creates a ring holding the last `capacity` events (clamped ≥ 1),
    /// timestamping relative to `start`.
    pub fn new(capacity: usize, start: Instant) -> Self {
        TraceRing {
            start,
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    event: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// Number of slots (the N of "last N events").
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ the number still held).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event. The sequence reservation is a single
    /// `fetch_add`; the slot store takes that slot's (uncontended) lock.
    pub fn record(&self, kind: TraceKind, subject: &str) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            at_ms: self.start.elapsed().as_millis().min(u64::MAX as u128) as u64,
            kind,
            subject: subject.to_string(),
        };
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.event.lock().unwrap() = Some(event);
    }

    /// The most recent `n` events, oldest first. Slots currently locked
    /// by a lapped writer are skipped rather than waited on.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let held = head.min(self.slots.len() as u64);
        let want = (n as u64).min(held);
        let mut events = Vec::with_capacity(want as usize);
        for seq in (head - want)..head {
            let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
            if let Ok(guard) = slot.event.try_lock() {
                if let Some(event) = guard.as_ref() {
                    // A lapped writer may have already overwritten this
                    // slot with a newer event; keep whatever is there as
                    // long as it is still within the requested window.
                    if event.seq >= head - want {
                        events.push(event.clone());
                    }
                }
            }
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays_in_order() {
        let ring = TraceRing::new(8, Instant::now());
        assert_eq!(ring.recorded(), 0);
        assert!(ring.last(5).is_empty());
        ring.record(TraceKind::Load, "fig4");
        ring.record(TraceKind::Rebuild, "fig4");
        ring.record(TraceKind::Save, "fig4");
        assert_eq!(ring.recorded(), 3);
        let events = ring.last(10);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, TraceKind::Load);
        assert_eq!(events[2].kind, TraceKind::Save);
        assert!(events.iter().all(|e| e.subject == "fig4"));
        let tail = ring.last(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, 2);
    }

    #[test]
    fn wraps_keeping_only_the_newest() {
        let ring = TraceRing::new(4, Instant::now());
        for i in 0..10 {
            let kind = if i % 2 == 0 {
                TraceKind::ShedOn
            } else {
                TraceKind::ShedOff
            };
            ring.record(kind, &format!("doc{i}"));
        }
        assert_eq!(ring.recorded(), 10);
        let events = ring.last(100);
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(events[3].subject, "doc9");
    }

    #[test]
    fn concurrent_writers_never_duplicate_sequences() {
        let ring = std::sync::Arc::new(TraceRing::new(64, Instant::now()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        ring.record(TraceKind::Pause, &format!("worker-{t}"));
                    }
                })
            })
            .collect();
        for handle in threads {
            handle.join().unwrap();
        }
        assert_eq!(ring.recorded(), 800);
        let events = ring.last(64);
        assert_eq!(events.len(), 64);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut deduped = seqs.clone();
        deduped.dedup();
        assert_eq!(seqs, deduped, "sequence numbers must be unique");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn kind_names_are_stable() {
        for (kind, name) in [
            (TraceKind::Load, "load"),
            (TraceKind::Save, "save"),
            (TraceKind::Rebuild, "rebuild"),
            (TraceKind::Quarantine, "quarantine"),
            (TraceKind::ShedOn, "shed_on"),
            (TraceKind::ShedOff, "shed_off"),
            (TraceKind::RateLimitOn, "rate_limit_on"),
            (TraceKind::RateLimitOff, "rate_limit_off"),
            (TraceKind::Pause, "pause"),
            (TraceKind::Resume, "resume"),
        ] {
            assert_eq!(kind.name(), name);
        }
    }
}
