//! Per-client token-bucket rate limiting for the TCP event loop.
//!
//! Each connection owns one [`RateLimiter`]. The bucket holds up to
//! `burst` tokens and refills continuously at `rate` tokens per second;
//! every request line costs one token, and a line arriving to an empty
//! bucket is shed with a structured `OVERLOADED rate=… burst=…` reply
//! instead of being executed. Because buckets are per connection, a
//! flooding client exhausts only its own budget — well-behaved sessions
//! on the same server keep theirs (the fairness property
//! `tests/tcp_server.rs` asserts end to end).
//!
//! The arithmetic is deliberately pure: time enters only as a
//! caller-supplied monotonic nanosecond timestamp, so the refill/cap
//! behavior is unit-testable (and proptested) without sockets or sleeps.
//! The default server configuration has no limiter at all —
//! [`RateLimiter::Unlimited`] — and that path is a true no-op: every
//! request admitted, no state touched.

/// A token bucket: capacity `burst`, continuous refill at `rate`/second.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket that starts full. `rate` is clamped to a positive
    /// finite value and `burst` to at least one token (a bucket that can
    /// never hold a whole token would shed everything forever).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            f64::MAX
        };
        let burst = if burst.is_finite() {
            burst.max(1.0)
        } else {
            1.0
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_ns: 0,
        }
    }

    /// Refill rate, tokens per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Bucket capacity, tokens.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Tokens currently available (after the most recent refill).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Advances the refill clock to `now_ns` (nanoseconds on any
    /// monotonic scale). Time never runs backwards here: a stale `now_ns`
    /// below the last seen timestamp refills nothing and leaves the clock
    /// alone, so out-of-order callers cannot mint tokens.
    fn refill(&mut self, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(self.last_ns);
        if elapsed == 0 {
            return;
        }
        self.last_ns = now_ns;
        let refill = elapsed as f64 * self.rate / 1e9;
        self.tokens = (self.tokens + refill).min(self.burst);
    }

    /// Takes one token if available: `true` = admitted, `false` = shed.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The per-connection admission decision: either no limit configured
/// (the default — a true no-op) or a [`TokenBucket`].
#[derive(Debug, Clone, PartialEq)]
pub enum RateLimiter {
    /// No rate limit: every request is admitted, no state is kept.
    Unlimited,
    /// Token-bucket limiting.
    Bucket(TokenBucket),
}

impl RateLimiter {
    /// A limiter from the server configuration: `None` = unlimited.
    pub fn from_config(rate: Option<f64>, burst: Option<f64>) -> RateLimiter {
        match rate {
            None => RateLimiter::Unlimited,
            Some(rate) => RateLimiter::Bucket(TokenBucket::new(rate, burst.unwrap_or(rate))),
        }
    }

    /// Admits or sheds one request arriving at `now_ns`.
    pub fn admit(&mut self, now_ns: u64) -> bool {
        match self {
            RateLimiter::Unlimited => true,
            RateLimiter::Bucket(bucket) => bucket.try_take(now_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn a_full_bucket_admits_exactly_burst_requests_at_once() {
        let mut bucket = TokenBucket::new(1.0, 3.0);
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(0), "fourth instantaneous request sheds");
        // One second at 1 token/sec buys exactly one more admission.
        assert!(bucket.try_take(SEC));
        assert!(!bucket.try_take(SEC));
    }

    #[test]
    fn fractional_refill_accumulates_until_a_whole_token() {
        let mut bucket = TokenBucket::new(2.0, 1.0);
        assert!(bucket.try_take(0));
        // 2 tokens/sec → 0.25 s buys half a token: still shedding.
        assert!(!bucket.try_take(SEC / 4));
        // Another 0.25 s completes the token.
        assert!(bucket.try_take(SEC / 2));
    }

    #[test]
    fn degenerate_configs_are_clamped_to_something_serviceable() {
        // Zero/negative/NaN rates must not brick the connection.
        for rate in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let mut bucket = TokenBucket::new(rate, 1.0);
            assert!(bucket.try_take(0), "rate {rate} must still admit");
        }
        // A sub-token burst is raised to one token.
        let bucket = TokenBucket::new(1.0, 0.25);
        assert_eq!(bucket.burst(), 1.0);
        assert_eq!(TokenBucket::new(1.0, f64::NAN).burst(), 1.0);
    }

    #[test]
    fn from_config_defaults_burst_to_the_rate() {
        match RateLimiter::from_config(Some(8.0), None) {
            RateLimiter::Bucket(bucket) => {
                assert_eq!(bucket.rate(), 8.0);
                assert_eq!(bucket.burst(), 8.0);
            }
            RateLimiter::Unlimited => panic!("rate was configured"),
        }
        assert_eq!(
            RateLimiter::from_config(None, Some(64.0)),
            RateLimiter::Unlimited,
            "burst without a rate configures nothing"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Refill is monotone in time and capped: observing later
        /// timestamps never lowers the token count, never exceeds the
        /// burst cap, and a stale (out-of-order) timestamp mints nothing.
        #[test]
        fn refill_is_monotone_and_capped(
            rate_milli in 1u64..100_000,      // 0.001 ..= 100 tokens/sec
            burst_milli in 1000u64..64_000,   // 1 ..= 64 tokens
            steps in prop::collection::vec(0u64..10 * SEC, 1..40),
        ) {
            let rate = rate_milli as f64 / 1000.0;
            let burst = burst_milli as f64 / 1000.0;
            let mut bucket = TokenBucket::new(rate, burst);
            // Drain the initial burst so refill has room to act.
            let mut now = 0u64;
            while bucket.try_take(now) {}
            let mut previous = bucket.tokens();
            for &step in &steps {
                now += step;
                let before_clock = bucket.tokens();
                // Stale timestamp: strictly nothing changes.
                bucket.refill(now.saturating_sub(step) / 2);
                prop_assert_eq!(bucket.tokens(), before_clock);
                bucket.refill(now);
                let tokens = bucket.tokens();
                prop_assert!(tokens + 1e-9 >= previous, "{tokens} < {previous}");
                prop_assert!(tokens <= burst + 1e-9, "{tokens} > burst {burst}");
                previous = tokens;
            }
        }

        /// Burst cap: no matter how long the bucket idles, an
        /// instantaneous volley admits at most `floor(burst)` requests
        /// (plus at most one from fractional carry), then sheds.
        #[test]
        fn an_idle_bucket_never_admits_more_than_the_burst(
            rate_milli in 1u64..1_000_000,
            burst_milli in 1000u64..32_000,
            idle in 0u64..1_000 * SEC,
        ) {
            let burst = burst_milli as f64 / 1000.0;
            let mut bucket = TokenBucket::new(rate_milli as f64 / 1000.0, burst);
            bucket.refill(idle);
            let mut admitted = 0u32;
            while bucket.try_take(idle) {
                admitted += 1;
                prop_assert!(
                    admitted <= burst.floor() as u32 + 1,
                    "volley admitted {admitted} against burst {burst}"
                );
            }
            prop_assert!(!bucket.try_take(idle), "shed state is stable");
        }

        /// The unlimited default is a true no-op: any request sequence at
        /// any timestamps is admitted in full and the limiter's state
        /// (there is none) never changes.
        #[test]
        fn unlimited_admits_everything(
            stamps in prop::collection::vec(0u64..u64::MAX / 2, 0..100),
        ) {
            let mut limiter = RateLimiter::from_config(None, None);
            prop_assert_eq!(&limiter, &RateLimiter::Unlimited);
            for &now in &stamps {
                prop_assert!(limiter.admit(now));
            }
            prop_assert_eq!(&limiter, &RateLimiter::Unlimited);
        }
    }
}
