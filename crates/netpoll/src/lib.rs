//! A minimal readiness poller over Linux `epoll`, hand-rolled for the
//! `xseed-serve` event loop.
//!
//! The build environment has no network access to a crate registry, so
//! this crate declares the four syscall wrappers it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `setrlimit`) directly as `extern "C"` items —
//! the symbols come from the libc the process is already linked against —
//! instead of depending on the `libc`/`mio` crates. It exists as its own
//! crate because the service crate (`xseed-service`) carries
//! `#![forbid(unsafe_code)]`: every `unsafe` block in the serving stack
//! lives here, behind a safe API.
//!
//! The surface is deliberately tiny: level-triggered registration of raw
//! fds with a caller-chosen `u64` token ([`Poller::add`] /
//! [`Poller::modify`] / [`Poller::remove`]) and a blocking
//! [`Poller::wait`] that fills a reusable event buffer. Level-triggered
//! mode keeps the caller's state machine simple — an fd with unread bytes
//! or unflushed buffer space reports ready again on the next wait, so a
//! short read/write never strands a connection.
//!
//! ```no_run
//! use netpoll::{Interest, Poller};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poller = Poller::new().unwrap();
//! poller.add(listener.as_raw_fd(), 0, Interest::READABLE).unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, None).unwrap();
//! for event in &events {
//!     assert_eq!(event.token, 0); // the listener is ready to accept
//! }
//! ```

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86 the kernel ABI declares it
/// packed (no padding between `events` and `data`); other architectures
/// use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

/// What an fd is registered to report: readability, writability, or both.
/// Hangup and error conditions are always reported regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a pending connection to
    /// accept, or the peer closed its write side).
    pub readable: bool,
    /// Wake when the fd's send buffer has room.
    pub writable: bool,
}

impl Interest {
    /// Readability only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writability only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        // EPOLLRDHUP distinguishes "peer half-closed" from "readable with
        // data": a half-close still wakes a read-interested caller (the
        // read returns 0), but the explicit bit lets callers see it even
        // while they are write-only (e.g. draining replies to a client
        // that already shut down its sending side).
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (has bytes, a pending accept, or an EOF to
    /// deliver).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed its end (EPOLLHUP/EPOLLRDHUP): reads will drain
    /// whatever is buffered and then return 0.
    pub hangup: bool,
    /// An error condition is pending on the fd (EPOLLERR); the next I/O
    /// call will surface it.
    pub error: bool,
}

/// A level-triggered epoll instance. See the crate docs.
#[derive(Debug)]
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the documented error signal and the fd is otherwise fresh and
        // owned by us alone.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, valid epoll fd we own.
        Ok(Poller {
            ep: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mut event: Option<EpollEvent>) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live stack value for
        // the duration of the call; the kernel only reads it.
        let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token`. The caller must keep `fd` open while
    /// registered (the kernel drops the registration automatically when
    /// the last descriptor for the file closes).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest set (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Removes a registered fd.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, replacing the contents of `events`. `None`
    /// blocks until something is ready; `Some(d)` returns (with however
    /// many events arrived, possibly zero) after at most `d`, rounded up
    /// to whole milliseconds so a short timeout never spins. A signal
    /// interrupting the wait returns cleanly with zero events.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        const MAX_EVENTS: usize = 1024;
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().max(if d.is_zero() { 0 } else { 1 });
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: the buffer outlives the call and `maxevents` matches
        // its length, so the kernel writes only into owned memory.
        let n = unsafe {
            epoll_wait(
                self.ep.as_raw_fd(),
                buf.as_mut_ptr(),
                MAX_EVENTS as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in buf.iter().take(n as usize) {
            let bits = raw.events;
            events.push(Event {
                token: raw.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: bits & EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// Raises the process's open-file soft limit toward `target` (capped at
/// the hard limit — no privileges required) and returns the resulting
/// soft limit. High-connection tests and soaks call this so a default
/// 1024-fd soft limit does not masquerade as a server bug; a limit
/// already at or above `target` is left untouched.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: the pointer is to a live stack value the kernel fills.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    let wanted = Rlimit {
        rlim_cur: target.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    // SAFETY: the pointer is to a live stack value the kernel reads.
    if unsafe { setrlimit(RLIMIT_NOFILE, &wanted) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(wanted.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = pair();
        poller.add(a.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();

        // Nothing pending: a short wait returns empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        b.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread bytes report again...
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // ...and draining them clears the readiness.
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn modify_switches_interest_and_remove_silences() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), 1, Interest::WRITABLE).unwrap();
        let mut events = Vec::new();
        // A fresh socket's send buffer is writable immediately.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable);

        b.write_all(b"ping").unwrap();
        poller.modify(a.as_raw_fd(), 2, Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 2);
        assert!(events[0].readable);

        poller.remove(a.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported_when_the_peer_closes() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.add(a.as_raw_fd(), 3, Interest::READABLE).unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup);
    }

    #[test]
    fn timeout_rounds_up_instead_of_spinning() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        poller.add(a.as_raw_fd(), 0, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_micros(100)))
            .unwrap();
        // Sub-millisecond timeouts become 1 ms, not 0 (a busy-loop).
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_micros(100));
    }

    #[test]
    fn nofile_limit_can_be_raised_toward_the_hard_cap() {
        let current = raise_nofile_limit(64).unwrap();
        assert!(current >= 64);
        // Asking again for something we already have is a no-op.
        assert_eq!(raise_nofile_limit(64).unwrap(), current);
    }
}
