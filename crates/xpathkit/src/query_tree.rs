//! The query tree (tree-pattern) representation used by the matcher.
//!
//! A parsed [`PathExpr`] is linear text; the estimator (Algorithm 3 of the
//! paper) works on its *query tree*: a rooted tree of query tree nodes
//! (QTNs), one per node test, where the main path forms the **spine** and
//! each predicate hangs off its step as a branch. The last spine node is
//! the **result node** — the node whose matches are counted.
//!
//! The tree is stored as an arena ([`QueryTree`]) with stable [`QtnId`]s so
//! that estimator state (output queues, match flags) can live in parallel
//! vectors owned by the matcher rather than inside the query tree itself.

use crate::ast::{Axis, NodeTest, PathExpr};
use std::fmt;

/// Index of a node within a [`QueryTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QtnId(pub u32);

impl QtnId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QtnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One node of the query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTreeNode {
    /// The node test this QTN must match.
    pub test: NodeTest,
    /// The axis connecting this QTN to its parent (for the root, the axis
    /// of the first location step relative to the document root).
    pub axis: Axis,
    /// Parent QTN, `None` for the root.
    pub parent: Option<QtnId>,
    /// Children in the order predicates/spine were written. The spine
    /// child (if any) is listed after the predicate children.
    pub children: Vec<QtnId>,
    /// `true` if this node lies on a predicate branch (it constrains the
    /// match but its own matches are not returned).
    pub is_predicate: bool,
}

/// An arena-allocated query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTree {
    nodes: Vec<QueryTreeNode>,
    root: QtnId,
    result: QtnId,
}

impl QueryTree {
    /// Builds the query tree of `expr`.
    pub fn from_expr(expr: &PathExpr) -> Self {
        let mut nodes: Vec<QueryTreeNode> = Vec::with_capacity(expr.node_test_count());
        let (root, result) = build_spine(expr, None, false, &mut nodes);
        QueryTree {
            nodes,
            root,
            result,
        }
    }

    /// The root QTN (corresponding to the first location step).
    pub fn root(&self) -> QtnId {
        self.root
    }

    /// The result QTN (last step of the main path).
    pub fn result(&self) -> QtnId {
        self.result
    }

    /// Number of QTNs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree has no nodes (never the case for trees
    /// built from a [`PathExpr`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: QtnId) -> &QueryTreeNode {
        &self.nodes[id.index()]
    }

    /// Children of `id`.
    pub fn children(&self, id: QtnId) -> &[QtnId] {
        &self.node(id).children
    }

    /// Iterates over all QTN ids in creation (spine-then-predicate DFS)
    /// order.
    pub fn ids(&self) -> impl Iterator<Item = QtnId> {
        (0..self.nodes.len() as u32).map(QtnId)
    }

    /// All QTNs on the result spine, root first.
    pub fn spine(&self) -> Vec<QtnId> {
        let mut rev = Vec::new();
        let mut cur = Some(self.result);
        while let Some(id) = cur {
            rev.push(id);
            cur = self.node(id).parent;
        }
        rev.reverse();
        rev
    }

    /// The predicate children of `id` (children flagged `is_predicate`).
    pub fn predicate_children(&self, id: QtnId) -> Vec<QtnId> {
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| self.node(c).is_predicate)
            .collect()
    }

    /// The spine child of `id`, if `id` is on the spine and not the result
    /// node.
    pub fn spine_child(&self, id: QtnId) -> Option<QtnId> {
        self.children(id)
            .iter()
            .copied()
            .find(|&c| !self.node(c).is_predicate)
    }

    /// Returns the descendant QTN ids of `id` (not including `id`).
    pub fn descendants(&self, id: QtnId) -> Vec<QtnId> {
        let mut out = Vec::new();
        let mut stack: Vec<QtnId> = self.children(id).to_vec();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(self.children(n));
        }
        out
    }

    /// Number of leaf QTNs.
    pub fn leaf_count(&self) -> usize {
        self.ids()
            .filter(|&id| self.children(id).is_empty())
            .count()
    }
}

/// Builds the chain of QTNs for `expr`, attaching the first step to
/// `parent`. Returns `(first, last)` ids of the chain.
fn build_spine(
    expr: &PathExpr,
    parent: Option<QtnId>,
    is_predicate: bool,
    nodes: &mut Vec<QueryTreeNode>,
) -> (QtnId, QtnId) {
    let mut first: Option<QtnId> = None;
    let mut prev: Option<QtnId> = parent;
    for step in &expr.steps {
        let id = QtnId(nodes.len() as u32);
        nodes.push(QueryTreeNode {
            test: step.test.clone(),
            axis: step.axis,
            parent: prev,
            children: Vec::new(),
            is_predicate,
        });
        if let Some(p) = prev {
            nodes[p.index()].children.push(id);
        }
        if first.is_none() {
            first = Some(id);
        }
        // Predicates hang off this step as predicate branches.
        for pred in &step.predicates {
            build_spine(pred, Some(id), true, nodes);
        }
        prev = Some(id);
    }
    let first = first.expect("path expressions are non-empty");
    (first, prev.expect("path expressions are non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn simple_path_is_a_chain() {
        let qt = QueryTree::from_expr(&parse("/a/b/c").unwrap());
        assert_eq!(qt.len(), 3);
        let spine = qt.spine();
        assert_eq!(spine.len(), 3);
        assert_eq!(qt.root(), spine[0]);
        assert_eq!(qt.result(), spine[2]);
        assert_eq!(qt.node(qt.root()).test, NodeTest::Name("a".into()));
        assert_eq!(qt.node(qt.result()).test, NodeTest::Name("c".into()));
        assert!(qt.ids().all(|id| !qt.node(id).is_predicate));
    }

    #[test]
    fn predicates_become_branches() {
        let qt = QueryTree::from_expr(&parse("/a/b[x][y]/c").unwrap());
        assert_eq!(qt.len(), 5);
        let spine = qt.spine();
        assert_eq!(spine.len(), 3);
        let b = spine[1];
        assert_eq!(qt.children(b).len(), 3); // x, y, c
        assert_eq!(qt.predicate_children(b).len(), 2);
        assert_eq!(qt.spine_child(b), Some(spine[2]));
        // The result node is c, not a predicate.
        assert!(!qt.node(qt.result()).is_predicate);
        assert_eq!(qt.node(qt.result()).test, NodeTest::Name("c".into()));
    }

    #[test]
    fn nested_predicates() {
        let qt = QueryTree::from_expr(&parse("/a[b[c]/d]/e").unwrap());
        assert_eq!(qt.len(), 5);
        // a has children: b (predicate), e (spine).
        let a = qt.root();
        assert_eq!(qt.children(a).len(), 2);
        let preds = qt.predicate_children(a);
        assert_eq!(preds.len(), 1);
        let b = preds[0];
        // b has children c (predicate of b inside the predicate path) and d.
        assert_eq!(qt.children(b).len(), 2);
        // Everything under the predicate branch is flagged as predicate.
        for d in qt.descendants(b) {
            assert!(qt.node(d).is_predicate);
        }
        assert!(qt.node(b).is_predicate);
    }

    #[test]
    fn axes_preserved() {
        let qt = QueryTree::from_expr(&parse("//a/b[//c]").unwrap());
        assert_eq!(qt.node(qt.root()).axis, Axis::Descendant);
        let spine = qt.spine();
        assert_eq!(qt.node(spine[1]).axis, Axis::Child);
        let pred = qt.predicate_children(spine[1])[0];
        assert_eq!(qt.node(pred).axis, Axis::Descendant);
    }

    #[test]
    fn result_of_branching_path_ending_in_predicate() {
        // /a/b[c] — the result node is b (the predicate only filters).
        let qt = QueryTree::from_expr(&parse("/a/b[c]").unwrap());
        assert_eq!(qt.node(qt.result()).test, NodeTest::Name("b".into()));
        assert_eq!(qt.leaf_count(), 1);
    }

    #[test]
    fn descendants_and_leaves() {
        let qt = QueryTree::from_expr(&parse("/a/b[x][y]/c").unwrap());
        let a = qt.root();
        assert_eq!(qt.descendants(a).len(), 4);
        assert_eq!(qt.leaf_count(), 3); // x, y, c
        assert!(!qt.is_empty());
    }

    #[test]
    fn wildcard_node() {
        let qt = QueryTree::from_expr(&parse("/a/*/c").unwrap());
        let spine = qt.spine();
        assert_eq!(qt.node(spine[1]).test, NodeTest::Wildcard);
    }
}
