//! Parse errors for path expressions.

use std::fmt;

/// Result alias for path-expression parsing.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error encountered while tokenizing or parsing a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Character offset in the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "path expression error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ParseError::new("unexpected token", 4);
        assert!(e.to_string().contains("offset 4"));
        assert!(e.to_string().contains("unexpected token"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ParseError>();
    }
}
