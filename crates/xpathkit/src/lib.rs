//! # xpathkit — the structural XPath subset used by XSEED
//!
//! The paper estimates cardinalities for *structural* path queries: location
//! steps over the child (`/`) and descendant (`//`) axes with name tests,
//! wildcards (`*`), and branching predicates (`[...]`) whose contents are
//! themselves relative structural paths. This crate implements that
//! language from scratch:
//!
//! * [`lexer`] — tokenizer for path expression strings,
//! * [`parser`] — recursive-descent parser producing an [`ast::PathExpr`],
//! * [`ast`] — the abstract syntax: steps, axes, node tests, predicates,
//! * [`classify`] — the paper's query taxonomy (simple / branching /
//!   complex path expressions, Section 2.1) and query recursion level,
//! * [`query_tree`] — conversion of a parsed expression into the query
//!   tree (tree pattern) consumed by the matcher (Algorithm 3),
//! * [`plan`] — cacheable parsed-and-classified plans ([`plan::QueryPlan`]),
//!   the entry point estimation services cache instead of re-parsing.
//!
//! ```
//! use xpathkit::parse;
//! use xpathkit::classify::QueryClass;
//!
//! let q = parse("//regions/australia/item[shipping]/location").unwrap();
//! assert_eq!(q.classify(), QueryClass::ComplexPath);
//! assert_eq!(q.to_string(), "//regions/australia/item[shipping]/location");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classify;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod query_tree;

pub use ast::{Axis, NodeTest, PathExpr, Step};
pub use classify::QueryClass;
pub use error::{ParseError, Result};
pub use parser::parse;
pub use plan::QueryPlan;
pub use query_tree::{QtnId, QueryTree, QueryTreeNode};
