//! The paper's query taxonomy (Section 2.1) and query recursion level.
//!
//! * **Simple path (SP)** — a linear path with only `/` axes and no
//!   predicates, e.g. `/a/c/s/t`.
//! * **Branching path (BP)** — contains branching predicates but still only
//!   `/` axes, e.g. `/a/c[s]/t`.
//! * **Complex path (CP)** — contains `//` axes and/or wildcards (and
//!   possibly predicates), e.g. `//c/s[//p]/t` or `/a/*/t`.
//!
//! A path expression is **recursive** with respect to a document when an
//! element of the document could match more than one of its node tests
//! (Definition 2); structurally that requires `//` axes, either with a
//! repeated name test or with the `//*//*` wildcard pattern. The **query
//! recursion level (QRL)** mirrors the document-side PRL: the maximum
//! number of occurrences of the same descendant-axis node test along any
//! root-to-leaf path of the query tree, minus one.

use crate::ast::{Axis, NodeTest, PathExpr, Step};
use std::collections::HashMap;
use std::fmt;

/// The workload class of a path expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Linear path, `/` axes only, no predicates.
    SimplePath,
    /// Predicates present, but only `/` axes and no wildcards.
    BranchingPath,
    /// Uses `//` axes and/or wildcards.
    ComplexPath,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryClass::SimplePath => write!(f, "SP"),
            QueryClass::BranchingPath => write!(f, "BP"),
            QueryClass::ComplexPath => write!(f, "CP"),
        }
    }
}

impl PathExpr {
    /// Classifies this expression per the paper's taxonomy.
    pub fn classify(&self) -> QueryClass {
        if self.has_descendant_axis() || self.has_wildcard() {
            QueryClass::ComplexPath
        } else if self.has_predicates() {
            QueryClass::BranchingPath
        } else {
            QueryClass::SimplePath
        }
    }

    /// Returns `true` if the expression is *potentially recursive*
    /// (Definition 2): some document element could match more than one of
    /// its node tests. Structurally this requires two descendant-axis
    /// steps along one root-to-leaf query path whose node tests can match
    /// the same element — identical names, two wildcards, or a wildcard
    /// paired with any name test.
    pub fn is_potentially_recursive(&self) -> bool {
        self.recursion_analysis().overlapping
    }

    /// Query recursion level (QRL): the maximum number of occurrences of
    /// the same descendant-axis node test along any root-to-leaf path of
    /// the query tree, minus one.
    pub fn query_recursion_level(&self) -> usize {
        self.recursion_analysis().max_same_test.saturating_sub(1)
    }

    fn recursion_analysis(&self) -> RecursionAnalysis {
        fn walk(steps: &[Step], state: &mut WalkState, out: &mut RecursionAnalysis) {
            let Some((step, rest)) = steps.split_first() else {
                return;
            };
            let mut bumped_name: Option<String> = None;
            let mut bumped_wildcard = false;
            if step.axis == Axis::Descendant {
                match &step.test {
                    NodeTest::Name(n) => {
                        let prior = state.name_counts.get(n).copied().unwrap_or(0);
                        if prior >= 1 || state.wildcards >= 1 {
                            out.overlapping = true;
                        }
                        let c = state.name_counts.entry(n.clone()).or_insert(0);
                        *c += 1;
                        out.max_same_test = out.max_same_test.max(*c);
                        bumped_name = Some(n.clone());
                    }
                    NodeTest::Wildcard => {
                        if state.wildcards >= 1 || state.name_steps >= 1 {
                            out.overlapping = true;
                        }
                        state.wildcards += 1;
                        out.max_same_test = out.max_same_test.max(state.wildcards);
                        bumped_wildcard = true;
                    }
                }
                if let NodeTest::Name(_) = &step.test {
                    state.name_steps += 1;
                }
            }
            // Predicates branch off the current node: each predicate forms
            // its own root-to-leaf extension of the current path.
            for pred in &step.predicates {
                walk(&pred.steps, state, out);
            }
            walk(rest, state, out);
            if let Some(n) = bumped_name {
                if let Some(c) = state.name_counts.get_mut(&n) {
                    *c -= 1;
                }
                state.name_steps -= 1;
            }
            if bumped_wildcard {
                state.wildcards -= 1;
            }
        }
        let mut state = WalkState::default();
        let mut out = RecursionAnalysis::default();
        walk(&self.steps, &mut state, &mut out);
        out
    }
}

/// Running per-path state for the recursion analysis walk.
#[derive(Debug, Default)]
struct WalkState {
    /// Occurrences of each name test with a descendant axis on the current
    /// root-to-leaf path.
    name_counts: HashMap<String, usize>,
    /// Number of descendant-axis name-test steps on the current path.
    name_steps: usize,
    /// Number of descendant-axis wildcard steps on the current path.
    wildcards: usize,
}

/// Output of the recursion analysis walk.
#[derive(Debug, Default)]
struct RecursionAnalysis {
    /// Maximum number of identical descendant-axis node tests on one path.
    max_same_test: usize,
    /// Whether two descendant-axis steps on one path could match the same
    /// element.
    overlapping: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn classify_simple() {
        assert_eq!(parse("/a/b/c").unwrap().classify(), QueryClass::SimplePath);
    }

    #[test]
    fn classify_branching() {
        assert_eq!(
            parse("/a/b[c]/d").unwrap().classify(),
            QueryClass::BranchingPath
        );
        assert_eq!(
            parse("/a[b][c]").unwrap().classify(),
            QueryClass::BranchingPath
        );
    }

    #[test]
    fn classify_complex() {
        assert_eq!(parse("//a/b").unwrap().classify(), QueryClass::ComplexPath);
        assert_eq!(parse("/a/*/b").unwrap().classify(), QueryClass::ComplexPath);
        assert_eq!(
            parse("/a/b[//c]").unwrap().classify(),
            QueryClass::ComplexPath
        );
    }

    #[test]
    fn display_classes() {
        assert_eq!(QueryClass::SimplePath.to_string(), "SP");
        assert_eq!(QueryClass::BranchingPath.to_string(), "BP");
        assert_eq!(QueryClass::ComplexPath.to_string(), "CP");
    }

    #[test]
    fn recursion_levels() {
        // From the paper: //s//s is recursive.
        assert_eq!(parse("//s//s").unwrap().query_recursion_level(), 1);
        assert!(parse("//s//s").unwrap().is_potentially_recursive());
        // Simple and branching paths can never be recursive.
        assert_eq!(parse("/a/s/s").unwrap().query_recursion_level(), 0);
        assert!(!parse("/a/s/s").unwrap().is_potentially_recursive());
        // //*//* is recursive even on non-recursive documents.
        assert!(parse("//*//*").unwrap().is_potentially_recursive());
        // A single descendant step is not recursive.
        assert!(!parse("//a/b").unwrap().is_potentially_recursive());
        // Deeper repetition raises the level.
        assert_eq!(parse("//s//s//s").unwrap().query_recursion_level(), 2);
    }

    #[test]
    fn recursion_in_predicates_counts() {
        // The predicate extends the rooted path in the query tree.
        assert_eq!(parse("//s[//s]").unwrap().query_recursion_level(), 1);
        // Two predicates on different branches do not stack.
        assert_eq!(parse("//a[//s][//s]").unwrap().query_recursion_level(), 0);
    }

    #[test]
    fn wildcard_interacts_with_names() {
        // //* followed by //s: the wildcard could match an s element.
        assert!(parse("//*//s").unwrap().is_potentially_recursive());
    }
}
