//! Recursive-descent parser for structural path expressions.
//!
//! Grammar (EBNF):
//!
//! ```text
//! path       := step+
//! step       := axis nodetest predicate*
//! axis       := "/" | "//"
//! nodetest   := NAME | "*"
//! predicate  := "[" rel_path "]"
//! rel_path   := rel_first step*          (first step may omit the axis,
//! rel_first  := axis? nodetest predicate* in which case it defaults to "/")
//! ```
//!
//! An absolute path must start with `/` or `//`. Inside predicates the
//! leading axis is optional and defaults to the child axis, matching the
//! paper's notation (`item[shipping]/location`).

use crate::ast::{Axis, NodeTest, PathExpr, Step};
use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, SpannedToken, Token};

/// Parses an absolute path expression such as
/// `//regions/australia/item[shipping]/location`.
pub fn parse(input: &str) -> Result<PathExpr> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        input_len: input.len(),
    };
    let expr = p.parse_absolute_path()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::new(
            "trailing tokens after path expression",
            p.current_offset(),
        ));
    }
    Ok(expr)
}

struct Parser<'a> {
    tokens: &'a [SpannedToken],
    pos: usize,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn current_offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.input_len)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos).map(|t| &t.token);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_absolute_path(&mut self) -> Result<PathExpr> {
        let mut steps = Vec::new();
        // The first step must begin with an explicit axis.
        match self.peek() {
            Some(Token::Slash) | Some(Token::DoubleSlash) => {}
            _ => {
                return Err(ParseError::new(
                    "an absolute path must start with '/' or '//'",
                    self.current_offset(),
                ));
            }
        }
        while matches!(self.peek(), Some(Token::Slash) | Some(Token::DoubleSlash)) {
            steps.push(self.parse_step()?);
        }
        if steps.is_empty() {
            return Err(ParseError::new(
                "empty path expression",
                self.current_offset(),
            ));
        }
        Ok(PathExpr::new(steps))
    }

    /// Parses a step that begins with an explicit axis token.
    fn parse_step(&mut self) -> Result<Step> {
        let axis = match self.bump() {
            Some(Token::Slash) => Axis::Child,
            Some(Token::DoubleSlash) => Axis::Descendant,
            _ => unreachable!("parse_step called without a leading axis token"),
        };
        let test = self.parse_node_test()?;
        let predicates = self.parse_predicates()?;
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn parse_node_test(&mut self) -> Result<NodeTest> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(NodeTest::Name(n.clone())),
            Some(Token::Star) => Ok(NodeTest::Wildcard),
            _ => Err(ParseError::new(
                "expected an element name or '*'",
                self.current_offset(),
            )),
        }
    }

    fn parse_predicates(&mut self) -> Result<Vec<PathExpr>> {
        let mut predicates = Vec::new();
        while matches!(self.peek(), Some(Token::LBracket)) {
            self.bump();
            let pred = self.parse_relative_path()?;
            match self.bump() {
                Some(Token::RBracket) => predicates.push(pred),
                _ => {
                    return Err(ParseError::new(
                        "expected ']' to close predicate",
                        self.current_offset(),
                    ))
                }
            }
        }
        Ok(predicates)
    }

    /// Parses the relative path inside a predicate. The first step may
    /// omit its axis (defaulting to the child axis).
    fn parse_relative_path(&mut self) -> Result<PathExpr> {
        let mut steps = Vec::new();
        let first = match self.peek() {
            Some(Token::Slash) | Some(Token::DoubleSlash) => self.parse_step()?,
            Some(Token::Name(_)) | Some(Token::Star) => {
                let test = self.parse_node_test()?;
                let predicates = self.parse_predicates()?;
                Step {
                    axis: Axis::Child,
                    test,
                    predicates,
                }
            }
            _ => {
                return Err(ParseError::new(
                    "expected a path inside predicate",
                    self.current_offset(),
                ))
            }
        };
        steps.push(first);
        while matches!(self.peek(), Some(Token::Slash) | Some(Token::DoubleSlash)) {
            steps.push(self.parse_step()?);
        }
        Ok(PathExpr::new(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeTest};

    #[test]
    fn simple_path() {
        let p = parse("/a/c/s/s/t").unwrap();
        assert_eq!(p.len(), 5);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Child));
        assert_eq!(p.to_string(), "/a/c/s/s/t");
    }

    #[test]
    fn descendant_path() {
        let p = parse("//s//s//p").unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Descendant));
    }

    #[test]
    fn wildcard_steps() {
        let p = parse("//*//*").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.steps.iter().all(|s| s.test == NodeTest::Wildcard));
    }

    #[test]
    fn paper_sample_query() {
        let p = parse("//regions/australia/item[shipping]/location").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.steps[2].predicates.len(), 1);
        assert_eq!(p.to_string(), "//regions/australia/item[shipping]/location");
    }

    #[test]
    fn nested_predicates() {
        let p = parse("/a[b[c]/d]/e").unwrap();
        assert_eq!(p.len(), 2);
        let pred = &p.steps[0].predicates[0];
        assert_eq!(pred.len(), 2);
        assert_eq!(pred.steps[0].predicates.len(), 1);
        assert_eq!(p.to_string(), "/a[b[c]/d]/e");
    }

    #[test]
    fn multiple_predicates_per_step() {
        let p = parse("/dblp/article[pages][publisher]/title").unwrap();
        assert_eq!(p.steps[1].predicates.len(), 2);
        assert_eq!(p.to_string(), "/dblp/article[pages][publisher]/title");
    }

    #[test]
    fn predicate_with_descendant_axis() {
        let p = parse("/a[//b]/c").unwrap();
        assert_eq!(p.steps[0].predicates[0].steps[0].axis, Axis::Descendant);
        assert_eq!(p.to_string(), "/a[//b]/c");
    }

    #[test]
    fn roundtrip_display_parse() {
        for q in [
            "/a/b/c",
            "//a//b",
            "/a[b]/c",
            "//site/regions/*[item]/name",
            "/a[b/c][d]/e[f]",
        ] {
            let p = parse(q).unwrap();
            assert_eq!(p.to_string(), q);
            let p2 = parse(&p.to_string()).unwrap();
            assert_eq!(p, p2);
        }
    }

    #[test]
    fn error_missing_leading_axis() {
        assert!(parse("a/b").is_err());
    }

    #[test]
    fn error_empty() {
        assert!(parse("").is_err());
        assert!(parse("/").is_err());
    }

    #[test]
    fn error_unclosed_predicate() {
        assert!(parse("/a[b").is_err());
    }

    #[test]
    fn error_trailing_tokens() {
        assert!(parse("/a]b").is_err());
    }

    #[test]
    fn error_empty_predicate() {
        assert!(parse("/a[]/b").is_err());
    }
}
