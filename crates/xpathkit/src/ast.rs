//! Abstract syntax for the structural path expression language.
//!
//! A [`PathExpr`] is an absolute path: a non-empty list of [`Step`]s, each
//! carrying an [`Axis`] (how the step relates to the previous one), a
//! [`NodeTest`] (name or wildcard), and zero or more branching predicates.
//! A predicate is itself a *relative* [`PathExpr`] evaluated from the
//! context of its step (its first step's axis indicates `/` or `//`).

use std::fmt;

/// The axis connecting a location step to its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The `/` axis: matches children of the context node.
    Child,
    /// The `//` axis: matches descendants (at any depth ≥ 1) of the
    /// context node.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// The node test of a location step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A name test: matches elements with exactly this name.
    Name(String),
    /// The wildcard `*`: matches elements with any name.
    Wildcard,
}

impl NodeTest {
    /// Returns the element name if this is a name test.
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeTest::Name(n) => Some(n),
            NodeTest::Wildcard => None,
        }
    }

    /// Returns `true` if this test matches the given element name.
    pub fn matches(&self, element_name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == element_name,
            NodeTest::Wildcard => true,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
        }
    }
}

/// One location step: axis, node test, and branching predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// How this step relates to the previous step (or to the root for the
    /// first step of an absolute path).
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Branching predicates, each a relative path expression.
    pub predicates: Vec<PathExpr>,
}

impl Step {
    /// Creates a step with no predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }

    /// Creates a `/name` step.
    pub fn child(name: impl Into<String>) -> Self {
        Step::new(Axis::Child, NodeTest::Name(name.into()))
    }

    /// Creates a `//name` step.
    pub fn descendant(name: impl Into<String>) -> Self {
        Step::new(Axis::Descendant, NodeTest::Name(name.into()))
    }

    /// Adds a predicate and returns the modified step (builder style).
    pub fn with_predicate(mut self, pred: PathExpr) -> Self {
        self.predicates.push(pred);
        self
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{}]", p.display_relative())?;
        }
        Ok(())
    }
}

/// A path expression: a non-empty sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// The location steps in order.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Creates a path from steps. Panics if `steps` is empty — an empty
    /// path expression is not representable in the language.
    pub fn new(steps: Vec<Step>) -> Self {
        assert!(
            !steps.is_empty(),
            "a path expression must have at least one step"
        );
        PathExpr { steps }
    }

    /// Builds a simple path `/s1/s2/.../sn` from names.
    pub fn simple<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let steps: Vec<Step> = names.into_iter().map(|n| Step::child(n)).collect();
        PathExpr::new(steps)
    }

    /// Number of location steps (spine length, not counting predicates).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always `false`: path expressions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of node tests including those inside predicates.
    pub fn node_test_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                1 + s
                    .predicates
                    .iter()
                    .map(PathExpr::node_test_count)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Maximum number of predicates on any single step (the paper's MBP
    /// dimension of a workload).
    pub fn max_predicates_per_step(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                let own = s.predicates.len();
                let nested = s
                    .predicates
                    .iter()
                    .map(PathExpr::max_predicates_per_step)
                    .max()
                    .unwrap_or(0);
                own.max(nested)
            })
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if any step (including inside predicates) uses the
    /// descendant axis.
    pub fn has_descendant_axis(&self) -> bool {
        self.steps.iter().any(|s| {
            s.axis == Axis::Descendant || s.predicates.iter().any(PathExpr::has_descendant_axis)
        })
    }

    /// Returns `true` if any step (including inside predicates) uses a
    /// wildcard node test.
    pub fn has_wildcard(&self) -> bool {
        self.steps.iter().any(|s| {
            s.test == NodeTest::Wildcard || s.predicates.iter().any(PathExpr::has_wildcard)
        })
    }

    /// Returns `true` if any step carries a predicate.
    pub fn has_predicates(&self) -> bool {
        self.steps.iter().any(|s| !s.predicates.is_empty())
    }

    /// Renders the path without a leading axis on the first step when that
    /// axis is `/` — the form used inside predicates (`[shipping]` rather
    /// than `[/shipping]`).
    pub fn display_relative(&self) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            if i == 0 && step.axis == Axis::Child {
                out.push_str(&format!("{}", step.test));
                for p in &step.predicates {
                    out.push_str(&format!("[{}]", p.display_relative()));
                }
            } else {
                out.push_str(&step.to_string());
            }
        }
        out
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple() {
        let p = PathExpr::simple(["a", "b", "c"]);
        assert_eq!(p.to_string(), "/a/b/c");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn display_with_predicate_and_descendant() {
        let pred = PathExpr::simple(["shipping"]);
        let p = PathExpr::new(vec![
            Step::descendant("regions"),
            Step::child("item").with_predicate(pred),
            Step::child("location"),
        ]);
        assert_eq!(p.to_string(), "//regions/item[shipping]/location");
    }

    #[test]
    fn node_test_count_includes_predicates() {
        let pred = PathExpr::simple(["x", "y"]);
        let p = PathExpr::new(vec![
            Step::child("a").with_predicate(pred),
            Step::child("b"),
        ]);
        assert_eq!(p.node_test_count(), 4);
    }

    #[test]
    fn max_predicates_per_step() {
        let p = PathExpr::new(vec![
            Step::child("a")
                .with_predicate(PathExpr::simple(["x"]))
                .with_predicate(PathExpr::simple(["y"])),
            Step::child("b"),
        ]);
        assert_eq!(p.max_predicates_per_step(), 2);
        assert_eq!(PathExpr::simple(["a"]).max_predicates_per_step(), 0);
    }

    #[test]
    fn feature_detection() {
        let sp = PathExpr::simple(["a", "b"]);
        assert!(!sp.has_descendant_axis());
        assert!(!sp.has_wildcard());
        assert!(!sp.has_predicates());

        let cp = PathExpr::new(vec![
            Step::descendant("a"),
            Step::new(Axis::Child, NodeTest::Wildcard),
        ]);
        assert!(cp.has_descendant_axis());
        assert!(cp.has_wildcard());
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(NodeTest::Wildcard.matches("anything"));
        assert!(NodeTest::Name("a".into()).matches("a"));
        assert!(!NodeTest::Name("a".into()).matches("b"));
        assert_eq!(NodeTest::Name("a".into()).name(), Some("a"));
        assert_eq!(NodeTest::Wildcard.name(), None);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_path_panics() {
        PathExpr::new(vec![]);
    }

    #[test]
    fn relative_display_strips_leading_slash() {
        let p = PathExpr::simple(["a", "b"]);
        assert_eq!(p.display_relative(), "a/b");
        let p2 = PathExpr::new(vec![Step::descendant("a")]);
        assert_eq!(p2.display_relative(), "//a");
    }
}
