//! Tokenizer for the structural path expression language.

use crate::error::{ParseError, Result};

/// A token of the path expression language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `/` — child axis separator.
    Slash,
    /// `//` — descendant axis separator.
    DoubleSlash,
    /// `[` — start of a branching predicate.
    LBracket,
    /// `]` — end of a branching predicate.
    RBracket,
    /// `*` — wildcard node test.
    Star,
    /// An element name test.
    Name(String),
}

/// A token together with its character offset in the original input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Offset of the first character of the token.
    pub offset: usize,
}

/// Tokenizes a path expression string.
///
/// Whitespace between tokens is permitted and skipped. Names follow the
/// same rules as XML element names in `xmlkit` (ASCII letters, digits,
/// `_`, `-`, `.`, `:`).
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                pos += 1;
            }
            b'/' => {
                if pos + 1 < bytes.len() && bytes[pos + 1] == b'/' {
                    tokens.push(SpannedToken {
                        token: Token::DoubleSlash,
                        offset: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Slash,
                        offset: pos,
                    });
                    pos += 1;
                }
            }
            b'[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    offset: pos,
                });
                pos += 1;
            }
            b']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    offset: pos,
                });
                pos += 1;
            }
            b'*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    offset: pos,
                });
                pos += 1;
            }
            _ if is_name_byte(b) => {
                let start = pos;
                while pos < bytes.len() && is_name_byte(bytes[pos]) {
                    pos += 1;
                }
                let name = std::str::from_utf8(&bytes[start..pos])
                    .map_err(|_| ParseError::new("invalid UTF-8 in name", start))?
                    .to_string();
                tokens.push(SpannedToken {
                    token: Token::Name(name),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    pos,
                ));
            }
        }
    }
    Ok(tokens)
}

#[inline]
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn simple_path() {
        assert_eq!(
            toks("/a/b/c"),
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::Slash,
                Token::Name("b".into()),
                Token::Slash,
                Token::Name("c".into())
            ]
        );
    }

    #[test]
    fn double_slash_and_star() {
        assert_eq!(
            toks("//a/*"),
            vec![
                Token::DoubleSlash,
                Token::Name("a".into()),
                Token::Slash,
                Token::Star
            ]
        );
    }

    #[test]
    fn predicates() {
        assert_eq!(
            toks("/a[b]/c"),
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::LBracket,
                Token::Name("b".into()),
                Token::RBracket,
                Token::Slash,
                Token::Name("c".into())
            ]
        );
    }

    #[test]
    fn whitespace_skipped() {
        assert_eq!(toks(" / a / b "), toks("/a/b"));
    }

    #[test]
    fn offsets_recorded() {
        let spanned = tokenize("/ab//c").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 1);
        assert_eq!(spanned[2].offset, 3);
        assert_eq!(spanned[3].offset, 5);
    }

    #[test]
    fn hyphenated_and_namespaced_names() {
        assert_eq!(
            toks("/ns:elem-name.x"),
            vec![Token::Slash, Token::Name("ns:elem-name.x".into())]
        );
    }

    #[test]
    fn rejects_invalid_character() {
        let err = tokenize("/a/$b").unwrap_err();
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn empty_input_is_empty_token_stream() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
