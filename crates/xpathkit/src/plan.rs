//! Cacheable parsed-query plans.
//!
//! An estimation service parses the same query strings over and over; a
//! [`QueryPlan`] bundles everything derivable from the text alone — the
//! parsed [`PathExpr`] and its [`QueryClass`] — into one immutable,
//! `Send + Sync` value that a plan cache can hand out behind an `Arc`
//! without re-parsing or re-classifying. Equality (and the retained
//! `text`) make cache hits verifiable against fresh parses.

use crate::ast::PathExpr;
use crate::classify::QueryClass;
use crate::error::Result;
use crate::parser::parse;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide plan-identity counter; see [`QueryPlan::id`].
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(0);

/// A parsed and classified query, ready for caching.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Unique identity of this parse (shared by clones, never reused).
    id: u64,
    text: String,
    expr: PathExpr,
    class: QueryClass,
}

/// Equality is *semantic* — two plans are equal when they parsed the same
/// text to the same expression and class — so cache hits remain verifiable
/// against fresh parses. The identity ([`QueryPlan::id`]) deliberately
/// does not participate.
impl PartialEq for QueryPlan {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text && self.expr == other.expr && self.class == other.class
    }
}

impl Eq for QueryPlan {}

impl QueryPlan {
    /// Parses and classifies `text` in one step — the cacheable entry
    /// point: everything a cache needs to serve later lookups is computed
    /// here, once.
    pub fn parse(text: &str) -> Result<Self> {
        let expr = parse(text)?;
        let class = expr.classify();
        Ok(QueryPlan {
            id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            text: text.to_string(),
            expr,
            class,
        })
    }

    /// A process-unique identity for this plan, assigned at parse time and
    /// shared by clones. Downstream caches (e.g. a per-snapshot
    /// compiled-query cache) can key on it without hashing the query text:
    /// ids are handed out by a monotone counter and never reused, so a
    /// stale key can never alias a different plan. Two independent parses
    /// of the same text get different ids — the worst case is a redundant
    /// recompilation, never a wrong answer.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed expression.
    pub fn expr(&self) -> &PathExpr {
        &self.expr
    }

    /// The paper's SP/BP/CP classification, computed at parse time.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// Consumes the plan, returning the expression.
    pub fn into_expr(self) -> PathExpr {
        self.expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_fresh_parse() {
        for q in ["/a/b/c", "//site//item[payment]", "/a/*/b[c][d]/e"] {
            let plan = QueryPlan::parse(q).unwrap();
            let fresh = parse(q).unwrap();
            assert_eq!(plan.expr(), &fresh);
            assert_eq!(plan.class(), fresh.classify());
            assert_eq!(plan.text(), q);
            assert_eq!(plan.clone().into_expr(), fresh);
        }
    }

    #[test]
    fn plan_propagates_parse_errors() {
        assert!(QueryPlan::parse("not a query [[").is_err());
        assert!(QueryPlan::parse("").is_err());
    }

    #[test]
    fn plan_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryPlan>();
    }

    #[test]
    fn plan_identity_is_unique_per_parse_and_shared_by_clones() {
        let a = QueryPlan::parse("/a/b").unwrap();
        let b = QueryPlan::parse("/a/b").unwrap();
        // Equal plans (same text), distinct identities.
        assert_eq!(a, b);
        assert_ne!(a.id(), b.id());
        // Clones keep the identity: they share the compiled artifacts.
        assert_eq!(a.clone().id(), a.id());
    }
}
