//! Cacheable parsed-query plans.
//!
//! An estimation service parses the same query strings over and over; a
//! [`QueryPlan`] bundles everything derivable from the text alone — the
//! parsed [`PathExpr`] and its [`QueryClass`] — into one immutable,
//! `Send + Sync` value that a plan cache can hand out behind an `Arc`
//! without re-parsing or re-classifying. Equality (and the retained
//! `text`) make cache hits verifiable against fresh parses.

use crate::ast::PathExpr;
use crate::classify::QueryClass;
use crate::error::Result;
use crate::parser::parse;

/// A parsed and classified query, ready for caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    text: String,
    expr: PathExpr,
    class: QueryClass,
}

impl QueryPlan {
    /// Parses and classifies `text` in one step — the cacheable entry
    /// point: everything a cache needs to serve later lookups is computed
    /// here, once.
    pub fn parse(text: &str) -> Result<Self> {
        let expr = parse(text)?;
        let class = expr.classify();
        Ok(QueryPlan {
            text: text.to_string(),
            expr,
            class,
        })
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed expression.
    pub fn expr(&self) -> &PathExpr {
        &self.expr
    }

    /// The paper's SP/BP/CP classification, computed at parse time.
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// Consumes the plan, returning the expression.
    pub fn into_expr(self) -> PathExpr {
        self.expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_fresh_parse() {
        for q in ["/a/b/c", "//site//item[payment]", "/a/*/b[c][d]/e"] {
            let plan = QueryPlan::parse(q).unwrap();
            let fresh = parse(q).unwrap();
            assert_eq!(plan.expr(), &fresh);
            assert_eq!(plan.class(), fresh.classify());
            assert_eq!(plan.text(), q);
            assert_eq!(plan.clone().into_expr(), fresh);
        }
    }

    #[test]
    fn plan_propagates_parse_errors() {
        assert!(QueryPlan::parse("not a query [[").is_err());
        assert!(QueryPlan::parse("").is_err());
    }

    #[test]
    fn plan_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryPlan>();
    }
}
