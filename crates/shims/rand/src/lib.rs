//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace resolves `rand` to this minimal, dependency-free
//! implementation. It covers exactly the API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`] trait
//! with `random_range` / `random_bool` (the rand 0.9 method names).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high quality for
//! synthetic-data generation and fully deterministic per seed, which is all
//! the `datagen` crate needs. It is NOT a cryptographic generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A reproducible generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core trait: uniform ranges and Bernoulli draws over a u64 source.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range` (`0..n` or `0..=n` style).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the standard float-from-bits recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Unbiased-enough multiply-shift reduction of a uniform u64 into `0..n`.
/// (Lemire's multiply-then-take-high-bits trick; the residual bias is far
/// below anything observable at the draw counts used for test data.)
#[inline]
fn reduce(x: u64, n: u64) -> u64 {
    ((x as u128 * n as u128) >> 64) as u64
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(0..=5u32);
            assert!(y <= 5);
        }
        // Both endpoints of an inclusive range are reachable.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
