//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace resolves `proptest` to this minimal, generation-only
//! implementation of the API surface the test suite uses: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: shrinking is **basic** rather than
//! integrated — on a failure the runner greedily applies
//! [`Strategy::shrink`] candidates (integers halve toward the range start,
//! vectors drop suffixes *and individual elements at any index* and shrink
//! elements in place, tuples shrink component-wise) until no candidate
//! still fails, then reports the minimized input.
//! Strategies built with `prop_map` / `prop_recursive` shrink through a
//! preimage table: [`Map`] remembers, keyed by the output's `Debug`
//! rendering, which source value produced each output it generated, so
//! `shrink` recovers the source, shrinks *it*, and re-maps the candidates
//! (recording their preimages in turn, so the greedy walk keeps
//! shrinking). Mapping functions are still not invertible — an output the
//! table has never seen (or evicted under the size cap) simply yields no
//! candidates and is reported as generated; the case number and the
//! deterministic per-test seed always reproduce it exactly (generation is
//! a pure function of the test name and case index). Distinct sources
//! whose outputs render identically collide in the table, which is
//! harmless: the stored source still maps to an output with that
//! rendering, and only candidates that *re-fail* are ever adopted.

#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::ops::Range;

thread_local! {
    /// Set when a shrink lookup missed the preimage table *after* the
    /// table had evicted entries: the reported counterexample may then be
    /// under-minimized. [`run_cases`] drains this to annotate the failure
    /// report instead of staying quiet about it.
    static SHRINK_DEGRADED: Cell<bool> = const { Cell::new(false) };
}

fn note_shrink_degraded() {
    SHRINK_DEGRADED.with(|flag| flag.set(true));
}

fn take_shrink_degraded() -> bool {
    SHRINK_DEGRADED.with(|flag| flag.replace(false))
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A boxed, dynamically dispatched strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Simplification candidates for `value`, most aggressive first; the
    /// failure runner greedily walks to the first candidate that still
    /// fails ([`shrink_failure`]). The default (no candidates) is correct
    /// for strategies that cannot shrink, e.g. mapped ones.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            preimages: RefCell::new(PreimageTable::default()),
        }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into one for branch nodes, applied
    /// up to `depth` times. (`desired_size` and `expected_branch_size` are
    /// accepted for API compatibility; sizing is controlled by the
    /// collection bounds inside `recurse`.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current: BoxedStrategy<Self::Value> = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
///
/// Remembers which source value produced each generated output (keyed by
/// the output's `Debug` rendering), so shrinking can run *through* the
/// mapping: recover the source, shrink it, re-map the candidates. The
/// per-value keying nests — a `Map` inside `prop::collection::vec` or a
/// `prop_recursive` chain shrinks its own layer independently.
pub struct Map<S: Strategy, F> {
    source: S,
    f: F,
    /// `Debug(output) → source` for every output this strategy produced
    /// (generated or offered as a shrink candidate). Bounded by
    /// [`PREIMAGE_CAP`] with least-recently-used eviction; eviction only
    /// costs shrinkability, never correctness, and a shrink that runs
    /// into an evicted entry flags the failure report (`shrink degraded`)
    /// so an under-minimized counterexample is never silent.
    preimages: RefCell<PreimageTable<S::Value>>,
}

/// Preimage-table size cap, keeping memory bounded on exceptionally long
/// runs. Eviction is least-recently-used: the entries most likely to
/// matter for shrinking — the just-generated failure and the candidates
/// offered while minimizing it — are exactly the most recently touched.
const PREIMAGE_CAP: usize = 1 << 16;

/// The bounded LRU `Debug(output) → source` table behind [`Map`].
///
/// Recency is tracked with monotone stamps and a lazy queue: every touch
/// (insert or lookup) pushes `(key, stamp)` and records the stamp in the
/// entry; eviction pops queue fronts whose stamp is stale until it finds
/// the entry's *current* front, which is the least recently used live
/// entry. Each touch enqueues exactly once, so the amortized cost is
/// O(1), and the queue is compacted when stale entries pile up.
struct PreimageTable<V> {
    entries: HashMap<String, (V, u64)>,
    queue: VecDeque<(String, u64)>,
    stamp: u64,
    cap: usize,
    /// An entry has been evicted: a later lookup miss may mean a degraded
    /// shrink rather than a never-seen value.
    evicted: bool,
}

impl<V> Default for PreimageTable<V> {
    fn default() -> Self {
        PreimageTable::with_cap(PREIMAGE_CAP)
    }
}

impl<V> PreimageTable<V> {
    fn with_cap(cap: usize) -> Self {
        PreimageTable {
            entries: HashMap::new(),
            queue: VecDeque::new(),
            stamp: 0,
            cap,
            evicted: false,
        }
    }
}

impl<V: Clone> PreimageTable<V> {
    fn touch(&mut self, key: &str) -> u64 {
        self.stamp += 1;
        self.queue.push_back((key.to_string(), self.stamp));
        if self.queue.len() > 4 * self.cap {
            self.compact();
        }
        self.stamp
    }

    /// Drops queue entries that no longer carry an entry's current stamp.
    fn compact(&mut self) {
        let entries = &self.entries;
        self.queue
            .retain(|(key, stamp)| entries.get(key).is_some_and(|(_, live)| live == stamp));
    }

    /// The source recorded for `key`, refreshed as most recently used.
    fn get(&mut self, key: &str) -> Option<V> {
        let stamp = self.touch(key);
        let (value, live) = self.entries.get_mut(key)?;
        *live = stamp;
        Some(value.clone())
    }

    /// Whether a miss for a generated output can be explained by eviction.
    fn evicted(&self) -> bool {
        self.evicted
    }

    fn insert(&mut self, key: String, value: V) {
        let stamp = self.touch(&key);
        if self.entries.insert(key, (value, stamp)).is_none() && self.entries.len() > self.cap {
            // Evict the least recently used entry: the first queue front
            // still carrying its entry's current stamp.
            while let Some((old_key, old_stamp)) = self.queue.pop_front() {
                if self
                    .entries
                    .get(&old_key)
                    .is_some_and(|(_, live)| *live == old_stamp)
                {
                    self.entries.remove(&old_key);
                    self.evicted = true;
                    break;
                }
            }
        }
    }
}

impl<S: Strategy, F> Map<S, F>
where
    S::Value: Clone,
{
    fn remember(&self, key: String, source: S::Value) {
        self.preimages.borrow_mut().insert(key, source);
    }
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let source = self.source.generate(rng);
        let output = (self.f)(source.clone());
        self.remember(format!("{output:?}"), source);
        output
    }

    /// Shrinks through the mapping via the preimage table: the source
    /// that produced `value` is shrunk and each candidate re-mapped (and
    /// remembered, so the greedy failure walk can keep going). An output
    /// with no recorded preimage yields no candidates — and when the
    /// table has evicted entries, that miss flags the run as
    /// `shrink degraded` so the failure report says so.
    fn shrink(&self, value: &O) -> Vec<O> {
        let source = {
            let mut table = self.preimages.borrow_mut();
            match table.get(&format!("{value:?}")) {
                Some(source) => source,
                None => {
                    if table.evicted() {
                        note_shrink_degraded();
                    }
                    return Vec::new();
                }
            }
        };
        self.source
            .shrink(&source)
            .into_iter()
            .map(|candidate| {
                let output = (self.f)(candidate.clone());
                self.remember(format!("{output:?}"), candidate);
                output
            })
            .collect()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }

            /// Integers halve toward the range start (toward zero for the
            /// usual `0..n` ranges): `start`, the midpoint, `value - 1`.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out: Vec<$t> = Vec::new();
                for candidate in [
                    self.start,
                    self.start + (v.saturating_sub(self.start)) / 2,
                    v.saturating_sub(1),
                ] {
                    if candidate < v && !out.contains(&candidate) {
                        out.push(candidate);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident => $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            /// Component-wise shrinking: each component's candidates with
            /// the other components held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A => 0),
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
);

/// Sub-strategies namespaced like the real crate (`prop::collection::vec`,
/// `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Sizes accepted by [`vec()`].
        pub trait SizeRange {
            /// Draws a length.
            fn pick(&self, rng: &mut TestRng) -> usize;

            /// The smallest admissible length (shrinking never drops a
            /// vector below it).
            fn lower_bound(&self) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }

            fn lower_bound(&self) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }

            fn lower_bound(&self) -> usize {
                self.start
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
            }

            fn lower_bound(&self) -> usize {
                *self.start()
            }
        }

        /// Strategy for vectors whose elements come from `element`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// Generates vectors of `size.pick()` elements.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }

            /// Vectors drop suffixes (down to the size range's lower
            /// bound, most aggressive first), then drop **individual
            /// elements at every index** (index-subset removal: a failure
            /// caused by a non-tail element still minimizes, instead of
            /// stalling at the shortest prefix containing it), then
            /// shrink elements in place through the element strategy.
            fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
                let min = self.size.lower_bound();
                let mut out: Vec<Vec<S::Value>> = Vec::new();
                if value.len() > min {
                    let mut keep = |n: usize| {
                        if n < value.len() && out.iter().all(|v| v.len() != n) {
                            out.push(value[..n].to_vec());
                        }
                    };
                    keep(min);
                    keep(min + (value.len() - min) / 2);
                    keep(value.len() - 1);
                    // Single-element removals, front to back. The last
                    // index duplicates the `len - 1` suffix drop above
                    // and is skipped.
                    for i in 0..value.len() - 1 {
                        let mut next = value.clone();
                        next.remove(i);
                        out.push(next);
                    }
                }
                for (i, element) in value.iter().enumerate() {
                    for candidate in self.element.shrink(element) {
                        let mut next = value.clone();
                        next[i] = candidate;
                        out.push(next);
                    }
                }
                out
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.bool()
            }

            fn shrink(&self, value: &bool) -> Vec<bool> {
                if *value {
                    vec![false]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Greedily minimizes a failing input: repeatedly asks the strategy for
/// shrink candidates of the current failure and walks to the first
/// candidate that still fails, until none does (or a step bound is hit,
/// guarding against pathological shrink graphs). Returns the minimized
/// input, the failure it produced, and the number of accepted steps.
///
/// Used by the [`proptest!`] runner; public so shrink behavior is testable
/// directly.
pub fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut error: TestCaseError,
    run: &F,
) -> (S::Value, TestCaseError, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    const MAX_STEPS: u32 = 1_000;
    let mut steps = 0u32;
    'outer: while steps < MAX_STEPS {
        for candidate in strategy.shrink(&value) {
            if let Err(err) = run(&candidate) {
                value = candidate;
                error = err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, error, steps)
}

/// Drives one property: generates `config.cases` inputs from `strategy`,
/// runs `run` on each, and on the first failure minimizes the input via
/// [`shrink_failure`] before panicking with the minimized case. This is
/// the engine behind [`proptest!`]; the macro packs all declared arguments
/// into one tuple strategy so every argument shrinks component-wise.
pub fn run_cases<S, F>(name: &str, config: ProptestConfig, strategy: S, run: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    for case in 0..config.cases {
        let values = strategy.generate(&mut rng);
        if let Err(first) = run(&values) {
            let _ = take_shrink_degraded();
            let (minimal, error, steps) = shrink_failure(&strategy, values, first, &run);
            let degraded = if take_shrink_degraded() {
                " [shrink degraded: a preimage-table entry was evicted, \
                 so the minimal input may not be fully minimized]"
            } else {
                ""
            };
            panic!(
                "property '{name}' failed at case {}/{}: {error} \
                 (shrunk {steps} steps; minimal input: {minimal:?}){degraded}",
                case + 1,
                config.cases,
            );
        }
    }
}

/// Everything the macros need, importable with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests, mirroring proptest's macro. Each function body
/// runs `config.cases` times over freshly generated inputs; a failing case
/// is minimized through [`shrink_failure`] before being reported.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    $config,
                    // All argument strategies as one tuple strategy, so a
                    // failure shrinks every argument component-wise.
                    ($( ($strategy), )+),
                    |values| {
                        #[allow(unused_parens)]
                        let ($($arg,)+) = ::std::clone::Clone::clone(values);
                        (|| { $body Ok(()) })()
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let strat = (0u8..5, prop::bool::ANY);
        for _ in 0..1000 {
            let (x, _b) = strat.generate(&mut rng);
            assert!(x < 5);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::TestRng::from_seed(2);
        let strat = prop::collection::vec(0u32..10, 2..6usize);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn recursive_strategy_bounds_depth() {
        #[derive(Debug, Clone)]
        struct Node {
            children: Vec<Node>,
        }
        fn depth(n: &Node) -> usize {
            1 + n.children.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = Just(()).prop_map(|_| Node { children: vec![] });
        let tree = leaf.prop_recursive(3, 0, 0, |inner| {
            prop::collection::vec(inner, 0..3usize).prop_map(|children| Node { children })
        });
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..200 {
            assert!(depth(&tree.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_passes(x in 0u32..100, flag in prop::bool::ANY) {
            prop_assert!(x < 100);
            prop_assert_eq!(x.min(99), x);
            prop_assert_ne!(u64::from(flag), 2);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn macro_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(x in 0u32..4) {
                prop_assert!(x < 2, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn integer_shrink_halves_toward_start() {
        let strat = 0u32..1000;
        let candidates = crate::Strategy::shrink(&strat, &100);
        assert_eq!(candidates, vec![0, 50, 99]);
        assert!(crate::Strategy::shrink(&strat, &0).is_empty());
        // Non-zero range starts shrink toward the start, not zero.
        let offset = 10u32..1000;
        assert_eq!(crate::Strategy::shrink(&offset, &12), vec![10, 11]);
    }

    #[test]
    fn vec_shrink_drops_suffixes_and_shrinks_elements() {
        let strat = prop::collection::vec(0u32..10, 2..6usize);
        let value = vec![3, 7, 1, 9];
        let candidates = crate::Strategy::shrink(&strat, &value);
        // Suffix drops respect the lower bound of 2.
        assert!(candidates.contains(&vec![3, 7]));
        assert!(candidates.contains(&vec![3, 7, 1]));
        assert!(candidates.iter().all(|v| v.len() >= 2));
        // Index-subset removals: any single element can go, not just a
        // suffix.
        assert!(candidates.contains(&vec![7, 1, 9]));
        assert!(candidates.contains(&vec![3, 1, 9]));
        assert!(candidates.contains(&vec![3, 7, 9]));
        // Element shrinks keep the length.
        assert!(candidates.contains(&vec![0, 7, 1, 9]));
        // A minimal value has no candidates.
        assert!(crate::Strategy::shrink(&strat, &vec![0, 0]).is_empty());
    }

    #[test]
    fn shrink_failure_removes_middle_elements() {
        // The failure is planted strictly in the middle: only the value 7
        // matters, and it is neither first nor last. Suffix-only
        // shrinking would stall at a prefix still containing the passing
        // head; index-subset removal minimizes to exactly one element.
        let strat = (prop::collection::vec(0u32..100, 0..10usize),);
        let run = |v: &(Vec<u32>,)| {
            if v.0.contains(&7) {
                Err(crate::TestCaseError::fail("contains the planted value"))
            } else {
                Ok(())
            }
        };
        let start = (vec![1, 7, 3, 4],);
        assert!(run(&start).is_err());
        let (minimal, _, steps) =
            crate::shrink_failure(&strat, start, crate::TestCaseError::fail("seed"), &run);
        assert_eq!(minimal, (vec![7],));
        assert!(steps > 0);
    }

    #[test]
    fn shrink_failure_minimizes_to_the_boundary() {
        // Fails for x >= 17: greedy shrinking must land exactly on 17.
        let strat = (0u32..1000,);
        let run = |v: &(u32,)| {
            if v.0 >= 17 {
                Err(crate::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let start = (612u32,);
        assert!(run(&start).is_err());
        let (minimal, _, steps) =
            crate::shrink_failure(&strat, start, crate::TestCaseError::fail("seed"), &run);
        assert_eq!(minimal, (17,));
        assert!(steps > 0);
    }

    #[test]
    fn shrink_failure_drops_vec_suffixes() {
        let strat = (prop::collection::vec(0u32..100, 0..20usize),);
        // Fails whenever the vec contains a value >= 50.
        let run = |v: &(Vec<u32>,)| {
            if v.0.iter().any(|&x| x >= 50) {
                Err(crate::TestCaseError::fail("has a big element"))
            } else {
                Ok(())
            }
        };
        let start = (vec![80, 1, 2, 99, 4, 6],);
        let (minimal, _, _) =
            crate::shrink_failure(&strat, start, crate::TestCaseError::fail("seed"), &run);
        // Suffix drops strip the passing tail, element halving then walks
        // the survivor down to the failure boundary.
        assert_eq!(minimal, (vec![50],));
    }

    #[test]
    fn shrink_failure_minimizes_through_prop_map() {
        // The strategy's output is a *mapped* type the walker cannot
        // shrink structurally; minimization must run through the preimage
        // table back to the u32 source. Fails for sources >= 17, so the
        // greedy walk must land exactly on "v17".
        let strat = ((0u32..1000).prop_map(|x| format!("v{x}")),);
        let run = |v: &(String,)| {
            let x: u32 = v.0[1..].parse().unwrap();
            if x >= 17 {
                Err(crate::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        };
        let mut rng = crate::TestRng::from_seed(7);
        let start = loop {
            let candidate = strat.generate(&mut rng);
            if run(&candidate).is_err() {
                break candidate;
            }
        };
        let (minimal, _, steps) =
            crate::shrink_failure(&strat, start, crate::TestCaseError::fail("seed"), &run);
        assert_eq!(minimal, (String::from("v17"),));
        assert!(steps > 0);
    }

    #[test]
    fn shrink_failure_minimizes_nested_maps() {
        // A mapped element strategy inside a vector: the vector layer
        // drops elements while each surviving element shrinks through its
        // own preimage entry. Fails when any wrapped value is >= 50.
        #[derive(Debug, Clone, PartialEq)]
        struct Wrapper(u32);
        let strat = (prop::collection::vec(
            (0u32..100).prop_map(Wrapper),
            0..10usize,
        ),);
        let run = |v: &(Vec<Wrapper>,)| {
            if v.0.iter().any(|w| w.0 >= 50) {
                Err(crate::TestCaseError::fail("has a big element"))
            } else {
                Ok(())
            }
        };
        let mut rng = crate::TestRng::from_seed(8);
        let start = loop {
            let candidate = strat.generate(&mut rng);
            if run(&candidate).is_err() {
                break candidate;
            }
        };
        let (minimal, _, _) =
            crate::shrink_failure(&strat, start, crate::TestCaseError::fail("seed"), &run);
        assert_eq!(minimal, (vec![Wrapper(50)],));
    }

    #[test]
    fn preimage_table_evicts_least_recently_used() {
        let mut table: crate::PreimageTable<u32> = crate::PreimageTable::with_cap(3);
        table.insert("a".into(), 1);
        table.insert("b".into(), 2);
        table.insert("c".into(), 3);
        assert!(!table.evicted());
        // Touch "a": it is now the most recently used, so filling past the
        // cap must evict "b" (the least recently used), not "a".
        assert_eq!(table.get("a"), Some(1));
        table.insert("d".into(), 4);
        assert!(table.evicted());
        assert_eq!(table.get("a"), Some(1));
        assert_eq!(table.get("b"), None);
        assert_eq!(table.get("c"), Some(3));
        assert_eq!(table.get("d"), Some(4));
        // Re-inserting an existing key updates in place without evicting.
        table.insert("c".into(), 33);
        assert_eq!(table.get("c"), Some(33));
        assert_eq!(table.get("a"), Some(1));
    }

    #[test]
    fn preimage_queue_compaction_keeps_live_entries() {
        let mut table: crate::PreimageTable<u32> = crate::PreimageTable::with_cap(2);
        table.insert("a".into(), 1);
        table.insert("b".into(), 2);
        // Many touches of the same key force queue compaction; recency
        // must survive it.
        for _ in 0..64 {
            assert_eq!(table.get("a"), Some(1));
        }
        assert!(table.queue.len() <= 4 * table.cap, "queue stays bounded");
        table.insert("c".into(), 3);
        assert_eq!(table.get("a"), Some(1), "recently used survives");
        assert_eq!(table.get("b"), None, "least recently used is evicted");
    }

    #[test]
    fn evicted_preimage_flags_shrink_degraded() {
        let strat = (0u32..1000).prop_map(|x| format!("v{x}"));
        let mut rng = crate::TestRng::from_seed(9);
        let value = crate::Strategy::generate(&strat, &mut rng);
        // Before any eviction, a miss stays silent (hand-built value).
        let _ = crate::take_shrink_degraded();
        assert!(crate::Strategy::shrink(&strat, &String::from("vnope")).is_empty());
        assert!(!crate::take_shrink_degraded());
        // Force an eviction, then shrink an output whose preimage is gone:
        // the degraded flag must be raised for the failure report.
        strat.preimages.borrow_mut().evicted = true;
        strat
            .preimages
            .borrow_mut()
            .entries
            .remove(&format!("{value:?}"));
        assert!(crate::Strategy::shrink(&strat, &value).is_empty());
        assert!(crate::take_shrink_degraded());
    }

    #[test]
    fn map_shrink_of_unseen_value_is_empty() {
        // Graceful degradation: an output the table never produced (e.g.
        // evicted, or constructed by hand) yields no candidates instead
        // of panicking or shrinking a wrong preimage.
        let strat = (0u32..1000).prop_map(|x| format!("v{x}"));
        assert!(crate::Strategy::shrink(&strat, &String::from("v612")).is_empty());
    }

    #[test]
    #[should_panic(expected = "minimal input")]
    fn macro_reports_minimized_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[allow(unused)]
            fn inner(x in 0u32..1000) {
                prop_assert!(x < 20, "x was {}", x);
            }
        }
        inner();
    }
}
