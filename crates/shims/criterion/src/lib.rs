//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace resolves `criterion` to this small wall-clock harness exposing
//! the same macro/API surface the benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `bench_with_input` /
//! `finish`, [`BenchmarkId::new`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is auto-calibrated to a per-sample iteration count, timed
//! over `sample_size` samples, and reported as median / mean / p95
//! nanoseconds per iteration on stdout. There is no statistical comparison
//! against saved baselines — the numbers are for eyeballing and for the
//! JSON reports the bench binaries write themselves.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation feeding
/// it (forwards to [`std::hint::black_box`]).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting `sample_count` samples of auto-calibrated
    /// iteration batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it runs for at least ~1 ms, so
        // Instant overhead stays below the noise floor.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(per_iter);
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p95 = samples[(samples.len() * 95 / 100).min(samples.len() - 1)];
    println!(
        "{name:<56} median {:>12}  mean {:>12}  p95 {:>12}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(p95)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Benchmarks a routine under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        });
        report(name, &mut samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_count: self.sample_size,
            },
            input,
        );
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut samples);
        self
    }

    /// Benchmarks a routine without an input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        });
        let label = format!("{}/{}", self.name, id);
        report(&label, &mut samples);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
